#![warn(missing_docs)]

//! # substrate — the hermetic-build layer
//!
//! Every crate in this workspace builds and tests with **zero crates.io
//! dependencies**; this crate is how. It provides small, well-specified,
//! std-only replacements for the external crates the seed depended on:
//!
//! | module | replaces | what it provides |
//! |---|---|---|
//! | [`sync`] | `parking_lot` | non-poisoning [`sync::Mutex`] / [`sync::Condvar`] / [`sync::RwLock`] |
//! | [`deque`] | `crossbeam::deque` | Chase–Lev work-stealing [`deque::Worker`] / [`deque::Stealer`] + [`deque::Injector`] |
//! | [`rng`] | `rand` | seedable [`rng::Rng`] (SplitMix64-seeded xoshiro256++) |
//! | [`prop`] | `proptest` | seeded property tests with bounded shrinking ([`prop::check`]) |
//! | [`mod@bench`] | `criterion` | wall-clock benchmark harness with a criterion-shaped API |
//! | [`fault`] | `fail` | deterministic named fault points driven by a seeded `STUDY_FAULTS` plan |
//!
//! Owning these layers is a deliberate architectural choice, not just a
//! build fix: the paper study depends on reproducible measurement, and the
//! runtime's two hottest concurrency structures (the thread-pool locks and
//! the `for_each` work-list) are exactly where future performance PRs will
//! live. With the implementations in-tree they can be profiled, specialized
//! and evolved without fighting a third-party abstraction — in the spirit of
//! the small self-contained primitive layers that the GraphBLAS
//! standardization effort argues for.
//!
//! The whole crate uses only `std`; `cargo build --offline` from a cold
//! registry succeeds for the entire workspace.

pub mod bench;
pub mod deque;
pub mod fault;
pub mod prop;
pub mod rng;
pub mod sync;

pub use rng::Rng;
