//! Deterministic fault injection: named fault points driven by a seeded
//! plan.
//!
//! GraphBLAS is specified as an *error-returning* API (`GrB_Info`,
//! including `GrB_OUT_OF_MEMORY`), and the study harness sweeps hundreds
//! of (problem, system, graph) cells per run — so failures must be
//! injectable, survivable and replayable rather than fatal. This module
//! is the injection half: code under test declares named *fault points*
//! ([`point`]) and a *plan* decides which hits of which points fire.
//!
//! ```text
//! STUDY_FAULTS="seed=42;grb.alloc.accumulator:p=0.01;pool.worker:nth=3"
//! ```
//!
//! * `seed=N` — base seed for probability decisions (default 0; may
//!   appear at most once, conventionally first).
//! * `name:p=F` — the point fires each hit independently with
//!   probability `F`, decided by a xoshiro256++ stream derived from
//!   `(seed, fnv1a(name), hit index)`. The decision depends only on
//!   those three values, so replays are bit-exact even when hits race
//!   across threads.
//! * `name:nth=K` — the point fires on exactly its `K`-th hit
//!   (1-based), everywhere else stays quiet. This is how a test or CI
//!   job targets *one* victim cell out of a sweep.
//!
//! Fault-point names are dotted paths, coarse-to-fine:
//! `<layer>.<site>[.<detail>]` — e.g. `grb.alloc.accumulator` (SpMV
//! accumulator allocation), `pool.worker` (thread-pool participant),
//! `cell.run` / `cell.hang` (study-runner cell body).
//!
//! The caller decides what firing *means* (return
//! `GrbError::ResourceExhausted`, panic, sleep): this module only
//! answers "does hit #h of point `name` fire?".
//!
//! ## Cost discipline
//!
//! Same contract as `perfmon::trace`: with no plan installed, every
//! [`point`] call is a single relaxed atomic load. All bookkeeping
//! (hit counters, the firing log) exists only while a plan is active.

use crate::rng::Rng;
use crate::sync::Mutex;
use std::sync::atomic::{AtomicU8, Ordering};

/// How one named point decides whether a hit fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fire each hit independently with this probability.
    Probability(f64),
    /// Fire on exactly this (1-based) hit.
    Nth(u64),
}

/// One `name:trigger` clause of a fault plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSpec {
    /// The fault-point name the clause applies to.
    pub name: String,
    /// When the point fires.
    pub trigger: Trigger,
}

/// A parsed fault plan: the seed plus the per-point triggers.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Base seed for probability decisions.
    pub seed: u64,
    /// Per-point triggers (a name may appear once).
    pub points: Vec<PointSpec>,
    /// The specification string the plan was parsed from (recorded in
    /// artifact headers so runs are attributable).
    pub spec: String,
}

impl FaultPlan {
    /// Parses the `STUDY_FAULTS` grammar (see the module docs).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on any malformed clause.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut seed = 0u64;
        let mut seen_seed = false;
        let mut points: Vec<PointSpec> = Vec::new();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            if let Some(v) = clause.strip_prefix("seed=") {
                if seen_seed {
                    return Err("duplicate seed= clause".to_string());
                }
                seed = v
                    .parse()
                    .map_err(|e| format!("bad seed {v:?}: {e}"))?;
                seen_seed = true;
                continue;
            }
            let (name, trigger) = clause
                .split_once(':')
                .ok_or_else(|| format!("clause {clause:?} is not name:trigger or seed=N"))?;
            let name = name.trim();
            if name.is_empty() {
                return Err(format!("clause {clause:?} has an empty point name"));
            }
            if points.iter().any(|p| p.name == name) {
                return Err(format!("point {name:?} appears twice"));
            }
            let trigger = match trigger.trim().split_once('=') {
                Some(("p", v)) => {
                    let p: f64 = v
                        .parse()
                        .map_err(|e| format!("bad probability {v:?} for {name:?}: {e}"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("probability {p} for {name:?} outside [0, 1]"));
                    }
                    Trigger::Probability(p)
                }
                Some(("nth", v)) => {
                    let k: u64 = v
                        .parse()
                        .map_err(|e| format!("bad hit index {v:?} for {name:?}: {e}"))?;
                    if k == 0 {
                        return Err(format!("nth for {name:?} is 1-based; 0 never fires"));
                    }
                    Trigger::Nth(k)
                }
                _ => {
                    return Err(format!(
                        "trigger for {name:?} must be p=<float> or nth=<int>, got {trigger:?}"
                    ))
                }
            };
            points.push(PointSpec {
                name: name.to_string(),
                trigger,
            });
        }
        Ok(FaultPlan {
            seed,
            points,
            spec: spec.to_string(),
        })
    }
}

/// 64-bit FNV-1a over the point name: a stable, dependency-free way to
/// give every point its own decision stream.
fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Per-point runtime state while a plan is active.
struct PointState {
    name: String,
    trigger: Trigger,
    hits: u64,
}

struct ActivePlan {
    seed: u64,
    spec: String,
    points: Vec<PointState>,
    /// `(point name, 1-based hit index)` of every firing, in order of
    /// occurrence — what the replay-determinism test compares.
    firings: Vec<(String, u64)>,
}

/// 0 = not yet resolved from `STUDY_FAULTS`, 1 = no plan, 2 = plan active.
static FLAG: AtomicU8 = AtomicU8::new(0);
const FLAG_UNRESOLVED: u8 = 0;
const FLAG_OFF: u8 = 1;
const FLAG_ON: u8 = 2;

static PLAN: Mutex<Option<ActivePlan>> = Mutex::new(None);

/// Parses a plan from the `STUDY_FAULTS` environment variable.
/// Unset (or empty) means no plan.
///
/// # Panics
///
/// Panics when `STUDY_FAULTS` is set but malformed, with the parse
/// message — the same contract as `STUDY_KERNEL`.
pub fn plan_from_env() -> Option<FaultPlan> {
    match std::env::var("STUDY_FAULTS") {
        Ok(spec) if !spec.trim().is_empty() => Some(
            FaultPlan::parse(&spec)
                .unwrap_or_else(|e| panic!("malformed STUDY_FAULTS {spec:?}: {e}")),
        ),
        _ => None,
    }
}

/// Installs `plan` (or removes any active plan with `None`), resetting
/// every hit counter and the firing log. Tests use this for isolation;
/// production runs rely on the lazy `STUDY_FAULTS` resolution instead.
pub fn set_plan(plan: Option<FaultPlan>) {
    let mut slot = PLAN.lock();
    match plan {
        None => {
            *slot = None;
            FLAG.store(FLAG_OFF, Ordering::Relaxed);
        }
        Some(p) => {
            *slot = Some(ActivePlan {
                seed: p.seed,
                spec: p.spec,
                points: p
                    .points
                    .into_iter()
                    .map(|s| PointState {
                        name: s.name,
                        trigger: s.trigger,
                        hits: 0,
                    })
                    .collect(),
                firings: Vec::new(),
            });
            FLAG.store(FLAG_ON, Ordering::Relaxed);
        }
    }
}

fn resolve_from_env() {
    // Take the lock first so two racing first calls cannot both install.
    let slot = PLAN.lock();
    if FLAG.load(Ordering::Relaxed) != FLAG_UNRESOLVED {
        return;
    }
    drop(slot);
    set_plan(plan_from_env());
}

/// Reports whether this hit of the named fault point fires.
///
/// The first call resolves `STUDY_FAULTS`; afterwards, with no plan
/// active, the cost is a single relaxed atomic load. Decisions are a
/// pure function of `(plan seed, point name, hit index)`, so a fixed
/// plan yields a bit-exact firing sequence on every run.
#[inline]
pub fn point(name: &str) -> bool {
    match FLAG.load(Ordering::Relaxed) {
        FLAG_OFF => false,
        FLAG_ON => decide(name),
        _ => {
            resolve_from_env();
            point(name)
        }
    }
}

#[cold]
fn decide(name: &str) -> bool {
    let mut slot = PLAN.lock();
    let Some(plan) = slot.as_mut() else {
        return false;
    };
    let seed = plan.seed;
    let Some(state) = plan.points.iter_mut().find(|p| p.name == name) else {
        return false;
    };
    state.hits += 1;
    let hit = state.hits;
    let fires = match state.trigger {
        Trigger::Nth(k) => hit == k,
        Trigger::Probability(p) => {
            // Derive a fresh stream per (seed, name, hit): the decision
            // cannot depend on call interleaving across threads.
            let mut rng = Rng::seed_from_u64(
                seed ^ fnv1a(name) ^ hit.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            rng.gen_bool(p)
        }
    };
    if fires {
        plan.firings.push((name.to_string(), hit));
    }
    fires
}

/// The `(point, hit)` pairs that fired since the plan was installed, in
/// order of occurrence. Empty when no plan is active.
pub fn firing_log() -> Vec<(String, u64)> {
    PLAN.lock()
        .as_ref()
        .map(|p| p.firings.clone())
        .unwrap_or_default()
}

/// The active plan's specification string (for artifact headers), or
/// `None` when fault injection is off. Resolves `STUDY_FAULTS` on first
/// use like [`point`].
pub fn plan_spec() -> Option<String> {
    if FLAG.load(Ordering::Relaxed) == FLAG_UNRESOLVED {
        resolve_from_env();
    }
    PLAN.lock().as_ref().map(|p| p.spec.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // The plan is process-global; serialize the tests that install one.
    static LOCK: StdMutex<()> = StdMutex::new(());

    fn with_plan<T>(spec: &str, f: impl FnOnce() -> T) -> T {
        let _g = LOCK.lock().unwrap();
        set_plan(Some(FaultPlan::parse(spec).unwrap()));
        let out = f();
        set_plan(None);
        out
    }

    #[test]
    fn parse_full_grammar() {
        let p = FaultPlan::parse("seed=42;grb.alloc.accumulator:p=0.25;pool.worker:nth=3")
            .unwrap();
        assert_eq!(p.seed, 42);
        assert_eq!(p.points.len(), 2);
        assert_eq!(p.points[0].name, "grb.alloc.accumulator");
        assert_eq!(p.points[0].trigger, Trigger::Probability(0.25));
        assert_eq!(p.points[1].trigger, Trigger::Nth(3));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("what").is_err());
        assert!(FaultPlan::parse("a:p=2.0").is_err());
        assert!(FaultPlan::parse("a:nth=0").is_err());
        assert!(FaultPlan::parse("a:k=1").is_err());
        assert!(FaultPlan::parse("seed=1;seed=2").is_err());
        assert!(FaultPlan::parse("a:p=0.5;a:nth=1").is_err());
        assert!(FaultPlan::parse(":p=0.5").is_err());
        assert!(FaultPlan::parse("").unwrap().points.is_empty());
    }

    #[test]
    fn no_plan_never_fires() {
        let _g = LOCK.lock().unwrap();
        set_plan(None);
        for _ in 0..100 {
            assert!(!point("grb.alloc.accumulator"));
        }
        assert!(firing_log().is_empty());
    }

    #[test]
    fn nth_fires_exactly_once() {
        let fired: Vec<bool> = with_plan("pool.worker:nth=3", || {
            (0..6).map(|_| point("pool.worker")).collect()
        });
        assert_eq!(fired, vec![false, false, true, false, false, false]);
    }

    #[test]
    fn unlisted_points_stay_quiet() {
        with_plan("pool.worker:nth=1", || {
            assert!(!point("grb.alloc.accumulator"));
            assert!(point("pool.worker"));
        });
    }

    #[test]
    fn probability_extremes() {
        with_plan("a:p=1.0;b:p=0.0", || {
            for _ in 0..20 {
                assert!(point("a"));
                assert!(!point("b"));
            }
        });
    }

    #[test]
    fn probability_firing_sequence_replays_bit_exact() {
        let run = || {
            with_plan("seed=7;a:p=0.5;b:p=0.3", || {
                for _ in 0..200 {
                    point("a");
                    point("b");
                }
                firing_log()
            })
        };
        let first = run();
        let second = run();
        assert!(!first.is_empty(), "p=0.5 over 200 hits must fire");
        assert_eq!(first, second);
    }

    #[test]
    fn different_seeds_give_different_sequences() {
        let seq = |seed: u64| {
            with_plan(&format!("seed={seed};a:p=0.5"), || {
                for _ in 0..64 {
                    point("a");
                }
                firing_log()
            })
        };
        assert_ne!(seq(1), seq(2));
    }

    #[test]
    fn probability_rate_is_roughly_honoured() {
        let fired = with_plan("seed=11;a:p=0.25", || {
            (0..4000).filter(|_| point("a")).count()
        });
        assert!((800..1200).contains(&fired), "got {fired}/4000 at p=0.25");
    }

    #[test]
    fn set_plan_resets_counters() {
        with_plan("a:nth=1", || {
            assert!(point("a"));
            set_plan(Some(FaultPlan::parse("a:nth=1").unwrap()));
            assert!(point("a"), "reinstall restarts the hit counter");
        });
    }

    #[test]
    fn decisions_ignore_thread_interleaving() {
        // Fire pattern for hits 1..=64 computed serially...
        let serial = with_plan("seed=9;a:p=0.5", || {
            (0..64).map(|_| point("a")).collect::<Vec<bool>>()
        });
        // ...must equal the per-hit decisions regardless of which thread
        // takes which hit (decisions key on the hit index alone).
        let threaded = with_plan("seed=9;a:p=0.5", || {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    std::thread::spawn(|| {
                        for _ in 0..16 {
                            point("a");
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            firing_log()
        });
        let expected: Vec<u64> = serial
            .iter()
            .enumerate()
            .filter(|(_, f)| **f)
            .map(|(i, _)| i as u64 + 1)
            .collect();
        let mut got: Vec<u64> = threaded.into_iter().map(|(_, h)| h).collect();
        got.sort_unstable();
        assert_eq!(got, expected);
    }
}
