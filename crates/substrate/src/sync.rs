//! Non-poisoning synchronization primitives over `std::sync`.
//!
//! The API mirrors the subset of `parking_lot` the workspace used:
//! [`Mutex::lock`] returns a guard directly (no `Result`), a [`Condvar`]
//! waits on a `&mut` guard without consuming it, and both constructors are
//! `const` so the primitives can back `static` registries.
//!
//! Poisoning is deliberately ignored: the runtime already converts operator
//! panics into ordinary unwinds on the calling thread (see
//! `galois_rt::pool`), so a poisoned std lock only means "some thread
//! panicked while holding the guard", and every use-site here either holds
//! the lock for a few instructions or protects state that is re-validated
//! after reacquisition.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A mutual-exclusion lock whose [`lock`](Mutex::lock) never fails.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out
    // (std's wait consumes and returns it); it is `Some` at all other times.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates the lock (usable in `static` initializers).
    #[inline]
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Attempts to acquire the lock without blocking.
    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard taken during wait")
    }
}

/// A condition variable paired with [`Mutex`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates the condition variable (usable in `static` initializers).
    #[inline]
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock and blocks until notified; the
    /// lock is reacquired before returning. Spurious wakeups are possible,
    /// so callers loop on their predicate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken during wait");
        guard.inner = Some(self.inner.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Like [`Condvar::wait`] but gives up after `timeout`.
    ///
    /// Returns `true` if the wait timed out (the lock is reacquired either
    /// way). Spurious wakeups are possible, so callers loop on their
    /// predicate and recompute the remaining timeout.
    pub fn wait_timeout<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> bool {
        let inner = guard.inner.take().expect("guard taken during wait");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => e.into_inner(),
        };
        guard.inner = Some(inner);
        result.timed_out()
    }

    /// Wakes one waiting thread.
    #[inline]
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    #[inline]
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// A readers-writer lock whose acquisition methods never fail.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates the lock (usable in `static` initializers).
    #[inline]
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    #[inline]
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    #[inline]
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// A thread-safe write-once cell over [`std::sync::OnceLock`].
///
/// Mirrors the subset of `once_cell::sync::OnceCell` the workspace uses:
/// a `const` constructor (so it can live inside `static`s and plain
/// structs without an `Option` dance), [`get_or_init`](OnceCell::get_or_init)
/// for lazy caches, and [`take`](OnceCell::take) so an exclusive owner can
/// invalidate the cached value.
pub struct OnceCell<T> {
    inner: std::sync::OnceLock<T>,
}

impl<T> OnceCell<T> {
    /// Creates an empty cell (usable in `static` initializers).
    #[inline]
    pub const fn new() -> Self {
        OnceCell {
            inner: std::sync::OnceLock::new(),
        }
    }

    /// The stored value, or `None` while uninitialized.
    #[inline]
    pub fn get(&self) -> Option<&T> {
        self.inner.get()
    }

    /// Returns the stored value, initializing it with `init` first if the
    /// cell is empty. Concurrent callers race; exactly one `init` runs and
    /// every caller observes its result.
    #[inline]
    pub fn get_or_init(&self, init: impl FnOnce() -> T) -> &T {
        self.inner.get_or_init(init)
    }

    /// Stores `value` if the cell is empty, or returns it back.
    ///
    /// # Errors
    ///
    /// Returns `Err(value)` when the cell was already initialized.
    #[inline]
    pub fn set(&self, value: T) -> Result<(), T> {
        self.inner.set(value)
    }

    /// Removes and returns the value, leaving the cell empty (requires
    /// exclusive ownership, so no reader can hold a stale reference).
    #[inline]
    pub fn take(&mut self) -> Option<T> {
        self.inner.take()
    }
}

impl<T> Default for OnceCell<T> {
    fn default() -> Self {
        OnceCell::new()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for OnceCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.get() {
            Some(v) => f.debug_tuple("OnceCell").field(v).finish(),
            None => f.write_str("OnceCell(<uninit>)"),
        }
    }
}

/// A tiny spin-then-yield backoff for lock-free retry loops.
///
/// Shared by the deque's steal loops and the runtime's termination
/// detection so the policy (4 spins, then yield) lives in one place.
#[derive(Debug, Default)]
pub struct Backoff {
    step: AtomicUsize,
}

impl Backoff {
    /// Fresh backoff with zero accumulated steps.
    #[inline]
    pub const fn new() -> Self {
        Backoff {
            step: AtomicUsize::new(0),
        }
    }

    /// Spins briefly the first few calls, then yields the CPU.
    #[inline]
    pub fn snooze(&self) {
        let step = self.step.fetch_add(1, Ordering::Relaxed);
        if step < 4 {
            for _ in 0..1 << step {
                std::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
    }

    /// Resets the policy after useful work was found.
    #[inline]
    pub fn reset(&self) {
        self.step.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(());
        let _g = m.lock();
        assert!(m.try_lock().is_none());
    }

    #[test]
    fn lock_survives_a_panicking_holder() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std lock");
        })
        .join();
        // A parking_lot-style lock must keep working afterwards.
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        waiter.join().unwrap();
    }

    #[test]
    fn rwlock_allows_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }

    #[test]
    fn once_cell_initializes_exactly_once() {
        let cell: OnceCell<u32> = OnceCell::new();
        assert_eq!(cell.get(), None);
        let mut runs = 0;
        let a = *cell.get_or_init(|| {
            runs += 1;
            7
        });
        let b = *cell.get_or_init(|| unreachable!("already initialized"));
        assert_eq!((a, b, runs), (7, 7, 1));
        assert_eq!(cell.set(9), Err(9), "set after init returns the value");
    }

    #[test]
    fn once_cell_take_empties_the_cell() {
        let mut cell: OnceCell<String> = OnceCell::new();
        assert_eq!(cell.set("x".into()), Ok(()));
        assert_eq!(cell.take().as_deref(), Some("x"));
        assert_eq!(cell.get(), None);
        assert_eq!(cell.get_or_init(|| "y".into()), "y");
    }

    #[test]
    fn once_cell_is_const_constructible() {
        static CELL: OnceCell<u32> = OnceCell::new();
        assert_eq!(*CELL.get_or_init(|| 3), 3);
    }

    #[test]
    fn static_init_is_const() {
        static M: Mutex<Vec<u32>> = Mutex::new(Vec::new());
        static CV: Condvar = Condvar::new();
        M.lock().push(1);
        CV.notify_one();
        assert_eq!(M.lock().len(), 1);
    }
}
