//! Seeded property-based testing with bounded shrinking.
//!
//! An in-tree replacement for the `proptest` subset the workspace used:
//! a property is checked against many generated cases, a failing case is
//! *shrunk* to a smaller counterexample, and the failure report carries
//! the seed needed to replay it exactly.
//!
//! # Model
//!
//! Generation is mediated by a [`Gen`], which draws raw `u64`s from an
//! [`Rng`] and records them on a *choice tape*. Replaying a tape through
//! the same generator function reproduces the same value; replaying a
//! *mutated* tape produces a related, usually smaller value (draws are
//! reduced into range with a modulus, so shrinking a raw choice toward
//! zero shrinks the derived value toward its range's low end, and
//! truncating the tape shrinks collection lengths — choices past the end
//! of the tape read as zero). This is the Hypothesis-style "shrink the
//! entropy, not the value" trick: it composes through arbitrary generator
//! functions with no per-type shrinker code.
//!
//! # Replaying failures
//!
//! Every test derives its stream from a fixed default seed, so failures
//! are deterministic in CI. A failure message prints the active seed;
//! re-running with `STUDY_PROP_SEED=<seed>` (any `u64`, decimal or
//! `0x`-hex) reproduces it, and setting a different value explores fresh
//! cases.
//!
//! # Example
//!
//! ```
//! use substrate::prop::{self, Gen};
//! use substrate::prop_assert;
//!
//! fn arb_sorted(g: &mut Gen) -> Vec<u32> {
//!     let mut v = g.vec(0..20, |g| g.gen_range(0..100u32));
//!     v.sort_unstable();
//!     v
//! }
//!
//! prop::check("sorted stays sorted after dedup", prop::cases(64), arb_sorted, |v| {
//!     let mut d = v.clone();
//!     d.dedup();
//!     prop_assert!(d.windows(2).all(|w| w[0] < w[1]), "dedup of sorted is strictly increasing");
//!     Ok(())
//! });
//! ```

use crate::rng::{Rng, SampleRange, UniformInt};

/// Default seed for every property stream; override with `STUDY_PROP_SEED`.
pub const DEFAULT_SEED: u64 = 0x0005_EED0_F570_D1E5;

/// Hard ceiling on property evaluations spent shrinking one failure.
const MAX_SHRINK_EVALS: u32 = 512;

/// Configuration for one [`check`] run.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of generated cases the property must pass.
    pub cases: u32,
    /// Seed of the case stream.
    pub seed: u64,
    /// Bound on shrink-candidate evaluations after a failure.
    pub max_shrink_evals: u32,
}

/// The standard configuration: `cases` cases, seed from `STUDY_PROP_SEED`
/// if set (decimal or `0x`-prefixed hex) and [`DEFAULT_SEED`] otherwise.
pub fn cases(cases: u32) -> Config {
    Config {
        cases,
        seed: seed_from_env(),
        max_shrink_evals: MAX_SHRINK_EVALS,
    }
}

fn seed_from_env() -> u64 {
    let Ok(raw) = std::env::var("STUDY_PROP_SEED") else {
        return DEFAULT_SEED;
    };
    let parsed = raw
        .strip_prefix("0x")
        .map(|h| u64::from_str_radix(h, 16))
        .unwrap_or_else(|| raw.parse());
    match parsed {
        Ok(seed) => seed,
        Err(_) => panic!("STUDY_PROP_SEED must be a u64, got {raw:?}"),
    }
}

/// Entropy source handed to generator functions; records or replays the
/// choice tape (see module docs).
#[derive(Debug)]
pub struct Gen {
    tape: Vec<u64>,
    pos: usize,
    rng: Option<Rng>,
}

impl Gen {
    fn recording(rng: Rng) -> Self {
        Gen {
            tape: Vec::new(),
            pos: 0,
            rng: Some(rng),
        }
    }

    fn replaying(tape: &[u64]) -> Self {
        Gen {
            tape: tape.to_vec(),
            pos: 0,
            rng: None,
        }
    }

    /// One raw draw: from the tape when replaying (zero past its end),
    /// from the RNG (recorded) otherwise.
    #[inline]
    fn draw(&mut self) -> u64 {
        if self.pos < self.tape.len() {
            let v = self.tape[self.pos];
            self.pos += 1;
            v
        } else {
            match &mut self.rng {
                Some(rng) => {
                    let v = rng.next_u64();
                    self.tape.push(v);
                    self.pos += 1;
                    v
                }
                None => 0,
            }
        }
    }

    /// Uniform-ish value in `range`. The raw draw is folded into range
    /// with a modulus rather than multiply-shift so that *smaller raw
    /// choices give smaller values*, which is what makes tape shrinking
    /// produce minimal counterexamples.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformInt + ShrinkMap,
        R: SampleRange<T>,
    {
        let (lo, hi) = range.bounds();
        T::from_offset(lo, hi, self.draw())
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Value in `[0, 1)`; shrinks toward `0.0`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.draw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A vector whose length is drawn from `len_range` and whose elements
    /// come from `element`; shrinks in both length and element size.
    pub fn vec<T, R>(&mut self, len_range: R, mut element: impl FnMut(&mut Gen) -> T) -> Vec<T>
    where
        R: SampleRange<usize>,
    {
        let len = self.gen_range(len_range);
        (0..len).map(|_| element(self)).collect()
    }

    /// A uniformly chosen element of a non-empty slice; shrinks toward
    /// the first element.
    pub fn choose<'a, T>(&mut self, options: &'a [T]) -> &'a T {
        assert!(!options.is_empty(), "choose on empty slice");
        &options[self.gen_range(0..options.len())]
    }
}

/// Folds a raw tape choice into a range so zero maps to the low end.
pub trait ShrinkMap: Sized {
    /// Value for `raw` within `lo..=hi`.
    fn from_offset(lo: Self, hi: Self, raw: u64) -> Self;
}

macro_rules! impl_shrink_map {
    ($($t:ty),*) => {$(
        impl ShrinkMap for $t {
            #[inline]
            fn from_offset(lo: Self, hi: Self, raw: u64) -> Self {
                let span = (hi.wrapping_sub(lo)) as u64;
                if span == u64::MAX {
                    return raw as $t;
                }
                lo.wrapping_add((raw % (span + 1)) as $t)
            }
        }
    )*};
}

impl_shrink_map!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Outcome of one property evaluation.
type PropResult = Result<(), String>;

/// Checks `property` against `config.cases` values from `generate`.
///
/// On failure the recorded choice tape is shrunk (bounded by
/// `config.max_shrink_evals` evaluations) and the panic message reports
/// the minimal counterexample found plus the seed that replays the run.
///
/// Panics inside the property count as failures and are shrunk the same
/// way, so plain `assert!`/indexing panics work; the [`crate::prop_assert!`]
/// macros produce nicer messages.
pub fn check<T, G, P>(name: &str, config: Config, generate: G, property: P)
where
    T: std::fmt::Debug,
    G: Fn(&mut Gen) -> T,
    P: Fn(&T) -> PropResult,
{
    // Each property gets its own stream (so adding one test does not
    // reshuffle every other test's cases) derived from the shared seed.
    let mut stream = Rng::seed_from_u64(config.seed ^ fnv1a(name.as_bytes()));
    for case in 0..config.cases {
        let case_rng = Rng::seed_from_u64(stream.next_u64());
        let mut gen = Gen::recording(case_rng);
        let value = generate(&mut gen);
        if let Err(message) = eval(&property, &value) {
            let budget = config.max_shrink_evals;
            let (min_tape, evals) = shrink(&gen.tape, &generate, &property, budget);
            let minimal = generate(&mut Gen::replaying(&min_tape));
            let min_message = eval(&property, &minimal).err().unwrap_or(message.clone());
            panic!(
                "property '{name}' failed on case {case}/{cases}\n\
                 ── original failure: {message}\n\
                 ── minimal counterexample (after {evals} shrink evals): {minimal:#?}\n\
                 ── minimal failure: {min_message}\n\
                 ── replay with: STUDY_PROP_SEED={seed:#x} (seed {seed})",
                cases = config.cases,
                seed = config.seed,
            );
        }
    }
}

/// Runs the property, converting panics into failure messages.
fn eval<T, P>(property: &P, value: &T) -> PropResult
where
    P: Fn(&T) -> PropResult,
{
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| property(value))) {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "property panicked".to_string());
            Err(format!("panic: {msg}"))
        }
    }
}

/// Greedy tape shrinking: repeatedly tries candidate tapes that are
/// shorter or element-wise smaller, keeping any that still fail, until a
/// full pass makes no progress or the evaluation budget is spent.
fn shrink<T, G, P>(tape: &[u64], generate: &G, property: &P, budget: u32) -> (Vec<u64>, u32)
where
    G: Fn(&mut Gen) -> T,
    P: Fn(&T) -> PropResult,
{
    let mut best = tape.to_vec();
    let mut evals = 0u32;
    let still_fails = |candidate: &[u64], evals: &mut u32| -> bool {
        *evals += 1;
        let value = generate(&mut Gen::replaying(candidate));
        eval(property, &value).is_err()
    };

    // Shrinking panics if the very first re-evaluation flips (a flaky,
    // non-deterministic property would loop forever otherwise) — here we
    // simply keep the original tape in that case.
    'outer: loop {
        let mut progressed = false;

        // Pass 1: drop suffixes (halving), which shortens collections.
        let mut keep = best.len() / 2;
        while keep < best.len() {
            if evals >= budget {
                break 'outer;
            }
            let candidate = best[..keep].to_vec();
            if still_fails(&candidate, &mut evals) {
                best = candidate;
                progressed = true;
                keep = best.len() / 2;
            } else {
                // Try keeping more of the tape.
                keep += (best.len() - keep).div_ceil(2).max(1);
                if keep >= best.len() {
                    break;
                }
            }
        }

        // Pass 2: shrink individual choices toward zero.
        for i in 0..best.len() {
            let original = best[i];
            if original == 0 {
                continue;
            }
            for candidate_value in [0, original / 2, original - 1] {
                if candidate_value == original {
                    continue;
                }
                if evals >= budget {
                    break 'outer;
                }
                let mut candidate = best.clone();
                candidate[i] = candidate_value;
                if still_fails(&candidate, &mut evals) {
                    best = candidate;
                    progressed = true;
                    break;
                }
            }
        }

        if !progressed {
            break;
        }
    }
    (best, evals)
}

/// FNV-1a, for deriving per-property streams from the property name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) with a formatted message; requires the enclosing closure to
/// return `Result<(), String>`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts two expressions are equal inside a property (see
/// [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err(format!(
                "{} != {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                a,
                b
            ));
        }
    }};
}

/// Asserts two expressions are unequal inside a property (see
/// [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err(format!(
                "{} == {} (both {:?})",
                stringify!($a),
                stringify!($b),
                a
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err(format!("{} (both {:?})", format!($($fmt)+), a));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        let counter = std::cell::Cell::new(0u32);
        check(
            "sum is commutative",
            Config {
                cases: 50,
                seed: 1,
                max_shrink_evals: 10,
            },
            |g| (g.gen_range(0..100u32), g.gen_range(0..100u32)),
            |&(a, b)| {
                counter.set(counter.get() + 1);
                prop_assert_eq!(a + b, b + a);
                Ok(())
            },
        );
        count += counter.get();
        assert_eq!(count, 50);
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let result = std::panic::catch_unwind(|| {
            check(
                "all values below 10",
                Config {
                    cases: 200,
                    seed: 7,
                    max_shrink_evals: 256,
                },
                |g| g.gen_range(0..1000u32),
                |&x| {
                    prop_assert!(x < 10, "{x} >= 10");
                    Ok(())
                },
            );
        });
        let msg = *result
            .expect_err("property must fail")
            .downcast::<String>()
            .expect("panic carries a String");
        assert!(msg.contains("STUDY_PROP_SEED="), "replay seed in: {msg}");
        assert!(
            msg.contains("minimal counterexample"),
            "shrink report in: {msg}"
        );
        // The minimal failing value for `x < 10` is exactly 10.
        assert!(msg.contains("10"), "shrunk to the boundary in: {msg}");
    }

    #[test]
    fn shrinking_minimizes_vec_lengths() {
        let result = std::panic::catch_unwind(|| {
            check(
                "vectors stay short",
                Config {
                    cases: 100,
                    seed: 3,
                    max_shrink_evals: 400,
                },
                |g| g.vec(0..50, |g| g.gen_range(0..5u32)),
                |v| {
                    prop_assert!(v.len() < 10, "len {}", v.len());
                    Ok(())
                },
            );
        });
        let msg = *result
            .expect_err("property must fail")
            .downcast::<String>()
            .unwrap();
        // The minimal counterexample is a vec of exactly 10 zeros.
        assert!(msg.contains("len 10"), "minimal length 10 in: {msg}");
    }

    #[test]
    fn replaying_a_tape_reproduces_the_value() {
        let mut gen = Gen::recording(Rng::seed_from_u64(99));
        let make = |g: &mut Gen| {
            (
                g.gen_range(0..1000u64),
                g.vec(1..10, |g| g.gen_bool(0.5)),
                g.gen_f64(),
            )
        };
        let original = make(&mut gen);
        let replayed = make(&mut Gen::replaying(&gen.tape));
        assert_eq!(original, replayed);
    }

    #[test]
    fn panics_inside_properties_are_failures() {
        let result = std::panic::catch_unwind(|| {
            check(
                "indexing never panics",
                Config {
                    cases: 50,
                    seed: 5,
                    max_shrink_evals: 64,
                },
                |g| g.vec(0..5, |g| g.gen_range(0..10u32)),
                |v| {
                    let _ = v[3]; // panics when len <= 3
                    Ok(())
                },
            );
        });
        assert!(result.is_err());
    }

    #[test]
    fn default_seed_is_stable() {
        // A property that records its first case must see the same value
        // on every run (no ambient entropy).
        let seen = std::cell::Cell::new(0u64);
        let run = |seen: &std::cell::Cell<u64>| {
            let mut stream = Rng::seed_from_u64(DEFAULT_SEED ^ fnv1a(b"stability"));
            let mut g = Gen::recording(Rng::seed_from_u64(stream.next_u64()));
            seen.set(g.gen_range(0..u64::MAX));
        };
        run(&seen);
        let first = seen.get();
        run(&seen);
        assert_eq!(first, seen.get());
    }
}
