//! Chase–Lev work-stealing deque and a shared injector queue.
//!
//! This is the work-distribution layer under `galois_rt::for_each`: each
//! pool thread owns a [`Worker`] it pushes and pops locally (LIFO, no
//! contention in the common case), every other thread holds a [`Stealer`]
//! that takes batches from the opposite end, and an [`Injector`] seeds the
//! initial items. The owner/thief protocol is the classic Chase–Lev
//! dynamic circular deque (Chase & Lev, SPAA 2005) with the C11 orderings
//! of Lê et al., *Correct and Efficient Work-Stealing for Weak Memory
//! Models* (PPoPP 2013); the API mirrors the `crossbeam-deque` subset the
//! runtime previously used so the executor's chunked-stealing semantics
//! are unchanged.
//!
//! Buffer reclamation is deliberately simple instead of epoch-based: a
//! grown-out-of buffer is *retired*, not freed, and all retired buffers
//! are released when the last handle drops. A stealer that loaded a stale
//! buffer pointer therefore always reads frozen memory, and its
//! compare-and-swap on `top` decides whether the value it copied is owned.
//! Deques in this workspace live for one `for_each` call, so the retained
//! memory is bounded by the high-water mark of a single loop.

use crate::sync::Mutex;
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
use std::sync::Arc;

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was observed empty.
    Empty,
    /// One item was successfully stolen.
    Success(T),
    /// Lost a race with another thread; retrying may succeed.
    Retry,
}

impl<T> Steal<T> {
    /// Returns the stolen item, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }
}

/// Ring buffer of one power-of-two capacity generation.
struct Buffer<T> {
    mask: usize,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

impl<T> Buffer<T> {
    fn alloc(cap: usize) -> *mut Buffer<T> {
        debug_assert!(cap.is_power_of_two());
        let slots = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Box::into_raw(Box::new(Buffer {
            mask: cap - 1,
            slots,
        }))
    }

    #[inline]
    fn cap(&self) -> usize {
        self.mask + 1
    }

    /// Writes `value` at logical index `i`. Owner-only.
    ///
    /// # Safety
    ///
    /// The slot must not hold a live value and no other thread may be
    /// granted ownership of index `i` while the write is in flight.
    #[inline]
    unsafe fn write(&self, i: isize, value: T) {
        (*self.slots[i as usize & self.mask].get()).write(value);
    }

    /// Copies the value at logical index `i` out of the buffer.
    ///
    /// # Safety
    ///
    /// Caller must ensure index `i` held a live value when it validated
    /// `top`/`bottom`, and must `mem::forget` the copy if its subsequent
    /// CAS on `top` fails (the value then belongs to another thread).
    #[inline]
    unsafe fn read(&self, i: isize) -> T {
        (*self.slots[i as usize & self.mask].get()).assume_init_read()
    }
}

struct Inner<T> {
    /// Steal end. Monotonically increasing.
    top: AtomicIsize,
    /// Owner end. Only the worker writes it.
    bottom: AtomicIsize,
    buffer: AtomicPtr<Buffer<T>>,
    /// Grown-out-of buffers, freed on drop (see module docs).
    retired: Mutex<Vec<*mut Buffer<T>>>,
}

// SAFETY: the Chase–Lev protocol transfers each value to exactly one
// thread; raw buffer pointers are only dereferenced under that protocol.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Exclusive access: drop the live range, then every buffer.
        let top = self.top.load(Ordering::Relaxed);
        let bottom = self.bottom.load(Ordering::Relaxed);
        let buf = *self.buffer.get_mut();
        unsafe {
            for i in top..bottom {
                drop((*buf).read(i));
            }
            drop(Box::from_raw(buf));
            for &old in self.retired.get_mut().iter() {
                drop(Box::from_raw(old));
            }
        }
    }
}

const INITIAL_CAP: usize = 64;
/// Upper bound on items moved per steal; matches the executor's chunked
/// stealing so one victim cannot be drained by a single thief.
const STEAL_BATCH: usize = 32;

/// Owner handle: LIFO push/pop at the bottom end. Not shareable; to let
/// other threads take work, hand them [`Worker::stealer`] handles.
pub struct Worker<T> {
    inner: Arc<Inner<T>>,
    /// `!Sync`: only the owning thread may push/pop.
    _not_sync: PhantomData<UnsafeCell<()>>,
}

// SAFETY: a Worker may migrate between threads (it is created on the
// spawning thread and moved into a pool thread); it just cannot be used
// from two threads at once, which `!Sync` enforces.
unsafe impl<T: Send> Send for Worker<T> {}

impl<T> Worker<T> {
    /// Creates an empty deque whose owner pops its own most recent pushes
    /// first (LIFO), while stealers take the oldest items.
    pub fn new_lifo() -> Self {
        Worker {
            inner: Arc::new(Inner {
                top: AtomicIsize::new(0),
                bottom: AtomicIsize::new(0),
                buffer: AtomicPtr::new(Buffer::alloc(INITIAL_CAP)),
                retired: Mutex::new(Vec::new()),
            }),
            _not_sync: PhantomData,
        }
    }

    /// Creates a [`Stealer`] for this deque; cheap, clonable, shareable.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Number of items currently in the deque (a racy snapshot).
    pub fn len(&self) -> usize {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// Whether the deque is observed empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pushes an item onto the owner end.
    pub fn push(&self, item: T) {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Acquire);
        let mut buf = self.inner.buffer.load(Ordering::Relaxed);
        // SAFETY: only the owner dereferences `buffer` without the steal
        // protocol, and only the owner mutates it.
        unsafe {
            if b - t >= (*buf).cap() as isize {
                self.grow(t, b);
                buf = self.inner.buffer.load(Ordering::Relaxed);
            }
            (*buf).write(b, item);
        }
        // Publish the slot before publishing the new bottom.
        self.inner.bottom.store(b + 1, Ordering::Release);
    }

    /// Pops an item from the owner end (the most recently pushed).
    pub fn pop(&self) -> Option<T> {
        let b = self.inner.bottom.load(Ordering::Relaxed) - 1;
        let buf = self.inner.buffer.load(Ordering::Relaxed);
        // Reserve the slot before reading `top` (SeqCst pairs with the
        // fence in `steal`): stealers that read the old bottom afterwards
        // will not touch index `b`.
        self.inner.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.inner.top.load(Ordering::Relaxed);
        let size = b - t;
        if size < 0 {
            // Deque was empty; restore bottom.
            self.inner.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        // SAFETY: index b held a live value and is now reserved (size >= 0).
        let item = unsafe { (*buf).read(b) };
        if size > 0 {
            return Some(item);
        }
        // Last item: race the stealers for it via `top`.
        let won = self
            .inner
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok();
        self.inner.bottom.store(b + 1, Ordering::Relaxed);
        if won {
            Some(item)
        } else {
            // A stealer got there first and owns the value it copied.
            std::mem::forget(item);
            None
        }
    }

    /// Doubles the buffer, copying the live range `t..b`. Owner-only.
    ///
    /// # Safety
    ///
    /// Must only be called by the owner with `t`/`b` freshly loaded.
    unsafe fn grow(&self, t: isize, b: isize) {
        let old = self.inner.buffer.load(Ordering::Relaxed);
        let new = Buffer::alloc((*old).cap() * 2);
        for i in t..b {
            // Bitwise copy: logical index i keeps its value in both
            // generations, which is what makes stale stealer reads benign.
            let v = (*old).read(i);
            (*new).write(i, v);
        }
        self.inner.buffer.store(new, Ordering::Release);
        self.inner.retired.lock().push(old);
    }
}

impl<T> Default for Worker<T> {
    fn default() -> Self {
        Worker::new_lifo()
    }
}

impl<T> std::fmt::Debug for Worker<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Worker").field("len", &self.len()).finish()
    }
}

/// Thief handle: takes the oldest items from a [`Worker`]'s deque.
pub struct Stealer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> std::fmt::Debug for Stealer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stealer").finish_non_exhaustive()
    }
}

impl<T: Send> Stealer<T> {
    /// Attempts to steal one item from the top end.
    pub fn steal(&self) -> Steal<T> {
        let t = self.inner.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.inner.bottom.load(Ordering::Acquire);
        if b - t <= 0 {
            return Steal::Empty;
        }
        let buf = self.inner.buffer.load(Ordering::Acquire);
        // SAFETY: a stale `buf` is frozen (module docs); the CAS below
        // decides whether this copy is ours.
        let item = unsafe { (*buf).read(t) };
        if self
            .inner
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            Steal::Success(item)
        } else {
            std::mem::forget(item);
            Steal::Retry
        }
    }

    /// Steals a batch of items, moving all but one into `dest` and
    /// returning that one. This is the chunked steal the executor's
    /// locality depends on: a thief amortizes contention on the victim
    /// over up to `STEAL_BATCH` items (never more than half the
    /// victim's queue) instead of coming back for every item.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let first = match self.steal() {
            Steal::Success(item) => item,
            other => return other,
        };
        // Take up to half of what remains, bounded by the batch size.
        let t = self.inner.top.load(Ordering::Relaxed);
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let extra = ((b - t).max(0) as usize / 2).min(STEAL_BATCH - 1);
        for _ in 0..extra {
            match self.steal() {
                Steal::Success(item) => dest.push(item),
                _ => break,
            }
        }
        Steal::Success(first)
    }
}

/// Shared FIFO used to seed work before per-thread deques exist and to
/// absorb overflow pushes from outside parallel regions.
///
/// Unlike the deque this is a plain locked queue: it is touched once per
/// *batch* (not per item) and only on the cold path where a thread has
/// exhausted its own deque and every victim, so a lock is simpler than a
/// lock-free MPMC queue and measurably irrelevant.
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Injector<T> {
    /// Creates an empty injector.
    pub fn new() -> Self {
        Injector {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Adds an item to the back of the queue.
    pub fn push(&self, item: T) {
        self.queue.lock().push_back(item);
    }

    /// Whether the queue is observed empty.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().is_empty()
    }

    /// Number of queued items (a racy snapshot).
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    /// Moves up to `STEAL_BATCH` items into `dest`, returning the first.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut q = self.queue.lock();
        let first = match q.pop_front() {
            Some(item) => item,
            None => return Steal::Empty,
        };
        let extra = q.len().min(STEAL_BATCH - 1);
        for _ in 0..extra {
            // Drain in FIFO order; dest pops LIFO, stealers of dest re-steal
            // FIFO, preserving the rough age order for_each relies on.
            let item = q.pop_front().expect("len checked above");
            dest.push(item);
        }
        Steal::Success(first)
    }
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Injector::new()
    }
}

impl<T> std::fmt::Debug for Injector<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Injector").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order_for_owner() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn stealer_takes_oldest() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let w = Worker::new_lifo();
        for i in 0..10 * INITIAL_CAP {
            w.push(i);
        }
        assert_eq!(w.len(), 10 * INITIAL_CAP);
        let mut got: Vec<usize> = std::iter::from_fn(|| w.pop()).collect();
        got.sort_unstable();
        assert!(got.iter().copied().eq(0..10 * INITIAL_CAP));
    }

    #[test]
    fn batch_steal_moves_items_into_dest() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        for i in 0..100 {
            w.push(i);
        }
        let dest = Worker::new_lifo();
        let got = s.steal_batch_and_pop(&dest);
        assert!(matches!(got, Steal::Success(_)));
        assert!(!dest.is_empty(), "batch steal must move extra items");
        assert!(dest.len() < 100 / 2 + 1, "never more than half");
    }

    #[test]
    fn injector_hands_out_batches() {
        let inj = Injector::new();
        for i in 0..100 {
            inj.push(i);
        }
        let w = Worker::new_lifo();
        let first = inj.steal_batch_and_pop(&w);
        assert_eq!(first, Steal::Success(0));
        assert_eq!(w.len(), STEAL_BATCH - 1);
        assert_eq!(inj.len(), 100 - STEAL_BATCH);
    }

    #[test]
    fn drop_releases_unconsumed_items() {
        // Miri-style sanity: drop with live items and retired buffers.
        let w: Worker<Box<u64>> = Worker::new_lifo();
        for i in 0..1000 {
            w.push(Box::new(i));
        }
        let _s = w.stealer();
        drop(w); // Inner still alive via stealer
    }
}
