//! Std-only wall-clock benchmark harness with a criterion-shaped API.
//!
//! Replaces the `criterion` dependency for the `bench` crate: the same
//! `Criterion` / `BenchmarkGroup` / `BenchmarkId` surface and the same
//! [`criterion_group!`](crate::criterion_group) /
//! [`criterion_main!`](crate::criterion_main) macros, so a benchmark file
//! ports by changing its `use` lines only.
//!
//! Methodology is deliberately simple and fully visible: per benchmark we
//! warm up for a fixed wall-clock budget, calibrate an iteration count
//! that makes one sample take ~`TARGET_SAMPLE_MS`, collect
//! `sample_size` samples, and report min / median / mean nanoseconds per
//! iteration. No outlier rejection, no bootstrap — for the paper's
//! tables the binaries in `crates/bench/src/bin` do their own repetition
//! logic, and for A/B comparisons during development min and median are
//! the numbers that matter.
//!
//! Environment knobs:
//! - `STUDY_BENCH_SAMPLES` overrides every group's sample count,
//! - `STUDY_BENCH_FAST=1` caps warm-up and samples for smoke runs.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock duration of one measured sample.
const TARGET_SAMPLE_MS: u64 = 25;
/// Warm-up budget per benchmark.
const WARMUP_MS: u64 = 150;

/// Top-level harness state: name filter plus global reporting.
pub struct Criterion {
    filter: Option<String>,
    fast: bool,
    sample_override: Option<usize>,
    ran: usize,
    skipped: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            fast: std::env::var("STUDY_BENCH_FAST").is_ok_and(|v| v != "0"),
            sample_override: std::env::var("STUDY_BENCH_SAMPLES")
                .ok()
                .and_then(|v| v.parse().ok()),
            ran: 0,
            skipped: 0,
        }
    }
}

impl Criterion {
    /// Harness configured from the process arguments, as `cargo bench`
    /// invokes it: the first free argument is a substring filter; harness
    /// flags (`--bench`, `--exact`, …) are accepted and ignored.
    pub fn from_args() -> Self {
        Criterion {
            filter: std::env::args().skip(1).find(|a| !a.starts_with('-')),
            ..Criterion::default()
        }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs one stand-alone benchmark (its own one-entry group).
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name.to_string());
        group.bench_inner(None, f);
        group.finish();
    }

    /// Prints the run footer. Called by [`criterion_main!`](crate::criterion_main).
    pub fn final_summary(&self) {
        println!(
            "\nbench summary: {} benchmarks run, {} filtered out",
            self.ran, self.skipped
        );
    }

    fn matches(&self, id: &str) -> bool {
        match &self.filter {
            Some(f) => id.contains(f.as_str()),
            None => true,
        }
    }
}

impl std::fmt::Debug for Criterion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Criterion")
            .field("filter", &self.filter)
            .finish_non_exhaustive()
    }
}

/// Identifier for a parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function/parameter`, e.g. `BenchmarkId::new("saxpy", "Hash")`.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only id, e.g. `BenchmarkId::from_parameter(4)`.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A set of benchmarks sharing a name prefix and sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        self.bench_inner(Some(id.into().id), f);
        self
    }

    /// Benchmarks `f` with an input value, criterion-style.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_inner(Some(id.id), |b| f(b, input));
        self
    }

    /// Ends the group (statistics were already printed per benchmark).
    pub fn finish(self) {}

    fn bench_inner<F>(&mut self, id: Option<String>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = match id {
            Some(id) => format!("{}/{}", self.name, id),
            None => self.name.clone(),
        };
        if !self.criterion.matches(&full_id) {
            self.criterion.skipped += 1;
            return;
        }
        let fast = self.criterion.fast;
        let samples = self
            .criterion
            .sample_override
            .unwrap_or(if fast { 3 } else { self.sample_size })
            .max(1);

        // Warm up and calibrate iterations per sample.
        let warmup_budget = Duration::from_millis(if fast { 10 } else { WARMUP_MS });
        let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
        let warmup_start = Instant::now();
        let mut per_iter = loop {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            let per_iter = bencher.elapsed.max(Duration::from_nanos(1)) / bencher.iters as u32;
            if warmup_start.elapsed() >= warmup_budget {
                break per_iter;
            }
            // Grow toward the sample target while warming the caches.
            let target = Duration::from_millis(TARGET_SAMPLE_MS);
            if bencher.elapsed < target {
                bencher.iters = (bencher.iters * 2).min(1 << 20);
            }
        };
        if per_iter.is_zero() {
            per_iter = Duration::from_nanos(1);
        }
        let target = Duration::from_millis(if fast { 2 } else { TARGET_SAMPLE_MS });
        let iters_per_sample = (target.as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 1 << 24) as u64;

        // Measure.
        let mut sample_ns: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            bencher.iters = iters_per_sample;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            sample_ns.push(bencher.elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
        sample_ns.sort_by(|a, b| a.total_cmp(b));
        let min = sample_ns[0];
        let median = sample_ns[sample_ns.len() / 2];
        let mean = sample_ns.iter().sum::<f64>() / sample_ns.len() as f64;
        println!(
            "bench {full_id:<52} min {:>12}  median {:>12}  mean {:>12}  ({} samples x {} iters)",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
            samples,
            iters_per_sample,
        );
        self.criterion.ran += 1;
    }
}

impl std::fmt::Debug for BenchmarkGroup<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BenchmarkGroup")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Timing handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it the harness-chosen number of
    /// iterations; the routine's return value is passed through
    /// [`black_box`] so the computation cannot be optimized away.
    pub fn iter<R, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> R,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

/// Bundles benchmark functions into a group runner, criterion-style:
/// `criterion_group!(benches, bench_a, bench_b);` defines
/// `fn benches(&mut Criterion)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::bench::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Defines `fn main()` running the given groups, criterion-style:
/// `criterion_main!(benches);`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::bench::Criterion::from_args();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion {
            filter: None,
            fast: true,
            sample_override: Some(2),
            ran: 0,
            skipped: 0,
        }
    }

    #[test]
    fn runs_and_counts_benchmarks() {
        let mut c = fast_criterion();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("par", 3), &3u64, |b, &k| {
            b.iter(|| k * 2)
        });
        group.finish();
        assert_eq!(c.ran, 2);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = fast_criterion();
        c.filter = Some("nomatch".into());
        c.bench_function("something_else", |b| b.iter(|| 1 + 1));
        assert_eq!(c.ran, 0);
        assert_eq!(c.skipped, 1);
    }

    #[test]
    fn bencher_accumulates_elapsed_time() {
        let mut b = Bencher { iters: 10, elapsed: Duration::ZERO };
        b.iter(|| std::thread::sleep(Duration::from_micros(50)));
        assert!(b.elapsed >= Duration::from_micros(400));
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 7).id, "f/7");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
