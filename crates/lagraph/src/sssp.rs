//! Single-source shortest paths: bulk-synchronous delta-stepping
//! (`sssp-gb`, LAGraph's delta-stepping variant).
//!
//! Buckets of width Δ are processed in order; within a bucket the
//! implementation iterates `vxm(min_plus)` relaxations until the bucket
//! stops changing. Every inner iteration is **four** separate bulk passes
//! (select actives → relax → filter improvements → fold into dist), and
//! there is a hard barrier between all of them — the paper's
//! *round-based execution* limitation, which costs over 100x against
//! asynchronous Lonestar delta-stepping on high-diameter road networks.

use graph::{CsrGraph, NodeId};
use graphblas::binops::{Min, MinPlus};
use graphblas::{ops, Descriptor, GrbError, Matrix, Runtime, Vector};

/// Distances produced by [`sssp_delta_stepping`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SsspResult {
    /// Per-vertex distance (`u64::MAX` = unreachable).
    pub dist: Vec<u64>,
    /// Buckets processed.
    pub buckets: u32,
    /// Total inner (bulk-synchronous) rounds across all buckets.
    pub rounds: u32,
}

/// Runs bulk-synchronous delta-stepping from `src` with bucket width
/// `delta` on the weighted out-adjacency of `g`.
///
/// # Panics
///
/// Panics if `delta == 0`.
///
/// # Errors
///
/// Propagates [`GrbError`] from the GraphBLAS calls.
pub fn sssp_delta_stepping<R: Runtime>(
    g: &CsrGraph,
    src: NodeId,
    delta: u64,
    rt: R,
) -> Result<SsspResult, GrbError> {
    assert!(delta > 0, "delta must be positive");
    let n = g.num_nodes();
    let a: Matrix<u64> = Matrix::from_graph(g, u64::from);

    let mut dist: Vector<u64> = Vector::new(n);
    ops::assign_scalar(&mut dist, None::<&Vector<bool>>, u64::MAX, &Descriptor::new(), rt)?;
    dist.set(src, 0)?;

    let mut bucket = 0u64;
    let mut buckets = 0u32;
    let mut rounds = 0u32;
    loop {
        buckets += 1;
        let lower = bucket.saturating_mul(delta);
        let upper = lower.saturating_add(delta);

        // Pass: gather this bucket's active vertices from dist.
        let mut active: Vector<u64> = Vector::new(n);
        ops::select_vector(&mut active, &dist, |_, d| d >= lower && d < upper, rt);

        while active.nvals() > 0 {
            rounds += 1;
            // Pass 1: relax all out-edges of the active vertices.
            let mut cand: Vector<u64> = Vector::new(n);
            ops::vxm(
                &mut cand,
                None::<&Vector<u64>>,
                MinPlus,
                &active,
                &a,
                &Descriptor::new().with_replace(true),
                rt,
            )?;
            // Pass 2: keep candidates that actually improve dist.
            let mut improved: Vector<u64> = Vector::new(n);
            ops::select_vector(
                &mut improved,
                &cand,
                |i, v| v < dist.get(i).unwrap_or(u64::MAX),
                rt,
            );
            if improved.nvals() == 0 {
                break;
            }
            // Pass 3: fold the improvements into dist.
            let mut next: Vector<u64> = Vector::new(n);
            ops::ewise_add(&mut next, Min, &dist, &improved, rt)?;
            dist = next;
            // Pass 4: re-activate improved vertices still in this bucket.
            let mut next_active: Vector<u64> = Vector::new(n);
            ops::select_vector(&mut next_active, &improved, |_, v| v < upper, rt);
            active = next_active;
        }

        // Find the next non-empty bucket among unsettled vertices.
        let mut rest: Vector<u64> = Vector::new(n);
        ops::select_vector(&mut rest, &dist, |_, d| d >= upper && d < u64::MAX, rt);
        if rest.nvals() == 0 {
            break;
        }
        let min_rest = ops::reduce_vector(&rest, Min, rt);
        bucket = min_rest / delta;
    }

    let dist = (0..n as u32)
        .map(|i| dist.get(i).unwrap_or(u64::MAX))
        .collect();
    Ok(SsspResult {
        dist,
        buckets,
        rounds,
    })
}

/// Distances produced by [`sssp_minplus`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinPlusResult {
    /// Per-vertex distance (`u64::MAX` = unreachable).
    pub dist: Vec<u64>,
    /// Relaxation rounds (min-plus products) executed.
    pub rounds: u32,
}

/// Bucket-free bulk-synchronous Bellman-Ford: each round is one
/// `vxm(min_plus)` over the improved frontier, a strict-improvement
/// filter and a `min` fold into the distance vector.
///
/// This is the serial (single-column) counterpart of the batched
/// `crate::batch::batched_sssp` engine — the batch runs the same three
/// passes per round with the relaxation amortized across k distance
/// columns, so column `j` of the batch is bit-identical to this
/// function's run from source `j`. Distances are exact (integer
/// weights), hence equal to [`sssp_delta_stepping`]'s and Dijkstra's.
///
/// # Errors
///
/// Propagates [`GrbError`] from the GraphBLAS calls.
pub fn sssp_minplus<R: Runtime>(
    g: &CsrGraph,
    src: NodeId,
    rt: R,
) -> Result<MinPlusResult, GrbError> {
    let n = g.num_nodes();
    let a: Matrix<u64> = Matrix::from_graph(g, u64::from);

    let mut dist: Vector<u64> = Vector::new(n);
    ops::assign_scalar(&mut dist, None::<&Vector<bool>>, u64::MAX, &Descriptor::new(), rt)?;
    dist.set(src, 0)?;
    let mut frontier: Vector<u64> = Vector::new(n);
    frontier.set(src, 0)?;

    let mut rounds = 0u32;
    loop {
        if frontier.nvals() == 0 {
            break;
        }
        rounds += 1;
        // Pass 1: relax every out-edge of the frontier.
        let mut cand: Vector<u64> = Vector::new(n);
        ops::vxm(
            &mut cand,
            None::<&Vector<u64>>,
            MinPlus,
            &frontier,
            &a,
            &Descriptor::new().with_replace(true),
            rt,
        )?;
        // Pass 2: keep candidates that strictly improve dist.
        let mut improved: Vector<u64> = Vector::new(n);
        ops::select_vector(
            &mut improved,
            &cand,
            |i, v| v < dist.get(i).unwrap_or(u64::MAX),
            rt,
        );
        if improved.nvals() == 0 {
            break;
        }
        // Pass 3: fold the improvements into dist; they are the next
        // frontier.
        let mut next: Vector<u64> = Vector::new(n);
        ops::ewise_add(&mut next, Min, &dist, &improved, rt)?;
        dist = next;
        frontier = improved;
    }

    let dist = (0..n as u32)
        .map(|i| dist.get(i).unwrap_or(u64::MAX))
        .collect();
    Ok(MinPlusResult { dist, rounds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::builder::from_weighted_edges;
    use graphblas::{GaloisRuntime, StaticRuntime};

    #[test]
    fn shortest_paths_on_weighted_diamond() {
        // 0 -> 1 (1), 0 -> 2 (4), 1 -> 2 (1), 2 -> 3 (1), 1 -> 3 (9)
        let g = from_weighted_edges(4, [(0, 1, 1), (0, 2, 4), (1, 2, 1), (2, 3, 1), (1, 3, 9)]);
        let r = sssp_delta_stepping(&g, 0, 4, GaloisRuntime).unwrap();
        assert_eq!(r.dist, vec![0, 1, 2, 3]);
    }

    #[test]
    fn unreachable_vertices_stay_at_max() {
        let g = from_weighted_edges(3, [(0, 1, 5)]);
        let r = sssp_delta_stepping(&g, 0, 8, GaloisRuntime).unwrap();
        assert_eq!(r.dist, vec![0, 5, u64::MAX]);
    }

    #[test]
    fn small_delta_creates_many_buckets() {
        let g = from_weighted_edges(4, [(0, 1, 10), (1, 2, 10), (2, 3, 10)]);
        let small = sssp_delta_stepping(&g, 0, 1, GaloisRuntime).unwrap();
        let large = sssp_delta_stepping(&g, 0, 1000, GaloisRuntime).unwrap();
        assert_eq!(small.dist, large.dist);
        assert!(small.buckets > large.buckets);
    }

    #[test]
    fn matches_dijkstra_on_random_graph() {
        let g = graph::gen::erdos_renyi(150, 600, 9).with_random_weights(50, 9);
        let r = sssp_delta_stepping(&g, 0, 16, GaloisRuntime).unwrap();
        // simple serial Dijkstra reference
        let n = g.num_nodes();
        let mut dist = vec![u64::MAX; n];
        dist[0] = 0;
        let mut heap = std::collections::BinaryHeap::new();
        heap.push(std::cmp::Reverse((0u64, 0u32)));
        while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
            if d > dist[v as usize] {
                continue;
            }
            for (u, w) in g.neighbors_weighted(v) {
                let nd = d + u64::from(w);
                if nd < dist[u as usize] {
                    dist[u as usize] = nd;
                    heap.push(std::cmp::Reverse((nd, u)));
                }
            }
        }
        assert_eq!(r.dist, dist);
    }

    #[test]
    fn backends_agree() {
        let g = graph::gen::grid_road(12, 9, 4);
        let ss = sssp_delta_stepping(&g, 0, 1 << 13, StaticRuntime).unwrap();
        let gb = sssp_delta_stepping(&g, 0, 1 << 13, GaloisRuntime).unwrap();
        assert_eq!(ss.dist, gb.dist);
    }

    #[test]
    fn minplus_matches_delta_stepping() {
        let g = graph::gen::erdos_renyi(150, 600, 9).with_random_weights(50, 9);
        let bf = sssp_minplus(&g, 0, GaloisRuntime).unwrap();
        let ds = sssp_delta_stepping(&g, 0, 16, GaloisRuntime).unwrap();
        assert_eq!(bf.dist, ds.dist);
        assert!(bf.rounds > 0);
    }

    #[test]
    fn minplus_marks_unreachable() {
        let g = from_weighted_edges(3, [(0, 1, 5)]);
        let r = sssp_minplus(&g, 0, GaloisRuntime).unwrap();
        assert_eq!(r.dist, vec![0, 5, u64::MAX]);
    }

    #[test]
    #[should_panic(expected = "delta must be positive")]
    fn rejects_zero_delta() {
        let g = from_weighted_edges(2, [(0, 1, 1)]);
        let _ = sssp_delta_stepping(&g, 0, 0, GaloisRuntime);
    }
}
