//! Maximal independent set via Luby's algorithm (extension workload).
//!
//! The canonical bulk-synchronous MIS: every round, candidates compare
//! their random priority against the maximum over their candidate
//! neighborhood (`mxv` with the `max_second` semiring), local maxima join
//! the set, and winners plus their neighborhoods leave the candidate
//! pool — four full passes per round, O(log n) rounds. The graph API
//! version (`lonestar::mis`) instead lets each vertex decide
//! asynchronously the moment its higher-priority neighbors settle.

use graph::{CsrGraph, NodeId};
use graphblas::binops::MaxSecond;
use graphblas::{ops, Descriptor, GrbError, Matrix, Runtime, Vector};

/// Result of the matrix-based MIS computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MisResult {
    /// Whether each vertex is in the independent set.
    pub in_set: Vec<bool>,
    /// Bulk rounds executed (Luby's is O(log n) w.h.p.).
    pub rounds: u32,
}

/// Deterministic unique priority: random high bits, vertex id low bits
/// (ties are impossible, which Luby's progress argument needs).
pub(crate) fn priority(v: NodeId, seed: u64) -> u64 {
    let mut z = u64::from(v)
        .wrapping_add(seed)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z & 0xFFFF_FFFF_0000_0000) | u64::from(v)
}

/// Computes a maximal independent set of a **symmetric, loop-free**
/// graph with Luby's algorithm.
///
/// # Errors
///
/// Propagates [`GrbError`] from the GraphBLAS calls.
pub fn mis<R: Runtime>(g: &CsrGraph, seed: u64, rt: R) -> Result<MisResult, GrbError> {
    let n = g.num_nodes();
    let a: Matrix<u64> = Matrix::from_graph(g, |_| 1);
    let mut in_set = vec![false; n];

    // Candidate priorities, dense with absences for removed vertices.
    let mut cand: Vector<u64> = Vector::new_dense(n, 0);
    for v in 0..n as u32 {
        cand.set(v, priority(v, seed))?;
    }

    let mut rounds = 0u32;
    while cand.nvals() > 0 {
        rounds += 1;
        // Pass 1: neighborhood maxima over the candidate subgraph.
        let mut nbr_max: Vector<u64> = Vector::new(n);
        ops::mxv(
            &mut nbr_max,
            None::<&Vector<u64>>,
            MaxSecond,
            &a,
            &cand,
            &Descriptor::new(),
            rt,
        )?;
        // Pass 2: local maxima win (priorities are unique, so strict
        // comparison suffices; isolated candidates have no entry in
        // nbr_max and always win).
        let mut winners: Vector<u64> = Vector::new(n);
        ops::select_vector(
            &mut winners,
            &cand,
            |v, p| p > nbr_max.get(v).unwrap_or(0),
            rt,
        );
        debug_assert!(winners.nvals() > 0, "Luby round must make progress");
        for (v, _) in winners.iter() {
            in_set[v as usize] = true;
        }
        // Pass 3: the winners' neighborhoods leave the pool with them.
        let mut covered: Vector<u64> = Vector::new(n);
        ops::vxm(
            &mut covered,
            None::<&Vector<u64>>,
            MaxSecond,
            &winners,
            &a,
            &Descriptor::new().with_replace(true),
            rt,
        )?;
        // Pass 4: shrink the candidate pool.
        let mut next: Vector<u64> = Vector::new(n);
        ops::select_vector(
            &mut next,
            &cand,
            |v, _| winners.get(v).is_none() && covered.get(v).is_none(),
            rt,
        );
        next.to_dense();
        cand = next;
    }

    Ok(MisResult { in_set, rounds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::builder::GraphBuilder;
    use graph::transform::symmetrize;
    use graphblas::{GaloisRuntime, StaticRuntime};

    fn sym(edges: &[(u32, u32)], n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for &(s, d) in edges {
            b.push_edge(s, d, 1);
        }
        symmetrize(&b.build())
    }

    pub(crate) fn assert_maximal_independent(g: &CsrGraph, in_set: &[bool]) {
        for v in 0..g.num_nodes() as u32 {
            if in_set[v as usize] {
                for u in g.neighbors(v) {
                    assert!(
                        !in_set[u as usize],
                        "edge {v}-{u} inside the independent set"
                    );
                }
            } else {
                assert!(
                    g.neighbors(v).any(|u| in_set[u as usize]),
                    "vertex {v} could join the set (not maximal)"
                );
            }
        }
    }

    #[test]
    fn triangle_selects_exactly_one() {
        let g = sym(&[(0, 1), (1, 2), (0, 2)], 3);
        let r = mis(&g, 1, GaloisRuntime).unwrap();
        assert_eq!(r.in_set.iter().filter(|&&x| x).count(), 1);
        assert_maximal_independent(&g, &r.in_set);
    }

    #[test]
    fn isolated_vertices_always_join() {
        let g = sym(&[(1, 2)], 4);
        let r = mis(&g, 2, GaloisRuntime).unwrap();
        assert!(r.in_set[0] && r.in_set[3]);
        assert_maximal_independent(&g, &r.in_set);
    }

    #[test]
    fn property_holds_on_random_graphs() {
        for seed in 0..4 {
            let g = symmetrize(&graph::gen::erdos_renyi(300, 900, seed));
            let r = mis(&g, seed, GaloisRuntime).unwrap();
            assert_maximal_independent(&g, &r.in_set);
            assert!(
                r.rounds <= 20,
                "Luby converges in O(log n) rounds, took {}",
                r.rounds
            );
        }
    }

    #[test]
    fn backends_agree_exactly() {
        // Same priorities, same bulk schedule: the sets are identical.
        let g = symmetrize(&graph::gen::preferential_attachment(400, 4, false, 3));
        let a = mis(&g, 7, StaticRuntime).unwrap();
        let b = mis(&g, 7, GaloisRuntime).unwrap();
        assert_eq!(a.in_set, b.in_set);
    }

    #[test]
    fn priorities_are_unique_per_vertex() {
        let mut seen = std::collections::HashSet::new();
        for v in 0..10_000u32 {
            assert!(seen.insert(priority(v, 42)), "collision at {v}");
        }
    }
}
