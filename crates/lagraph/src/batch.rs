//! Batched multi-source queries on the matrix API: msBFS, multi-seed
//! personalized PageRank and batched SSSP.
//!
//! The paper's algorithms answer one source per run; these entry points
//! answer k sources per run by generalizing the frontier vector to an
//! n × k [`MultiVector`] and advancing all columns through the shared
//! adjacency with one [`ops::mxm_frontier`] call per round — the matrix
//! API's natural amortization (one SpGEMM-shaped product instead of k
//! SpMV calls), mirroring GraphBLAST's GPU msBFS.
//!
//! Two invariants the tests pin down:
//!
//! * **Per-column bit-identity.** Each lane executes the exact serial
//!   kernel path (same per-round call sequence, same kernel selection,
//!   same accumulation order), so column `j` equals the serial run from
//!   source `j` bit for bit — at every k, kernel mode and thread count.
//! * **Per-query isolation.** A lane that fails (per-column byte guard,
//!   injected allocation fault, bad source) is recorded in its own
//!   `Result` and excluded from later rounds; sibling queries complete
//!   untouched.

use crate::bfs::BfsResult;
use crate::pagerank::{inv_degree, DAMPING};
use crate::sssp::MinPlusResult;
use graph::{CsrGraph, NodeId};
use graphblas::binops::{LorLand, Min, MinPlus, Plus, PlusTimes, Times};
use graphblas::ops::LaneOutcome;
use graphblas::{ops, Descriptor, GrbError, Matrix, MultiVector, Runtime, Vector};

/// Per-lane liveness and failure bookkeeping shared by the three
/// batched drivers.
struct Lanes {
    active: Vec<bool>,
    failed: Vec<Option<GrbError>>,
}

impl Lanes {
    fn new(k: usize) -> Self {
        Lanes {
            active: vec![true; k],
            failed: (0..k).map(|_| None).collect(),
        }
    }

    fn fail(&mut self, j: usize, e: GrbError) {
        self.failed[j] = Some(e);
        self.active[j] = false;
    }

    fn retire(&mut self, j: usize) {
        self.active[j] = false;
    }

    fn is_active(&self, j: usize) -> bool {
        self.active[j]
    }

    fn any_active(&self) -> bool {
        self.active.iter().any(|&on| on)
    }

    /// Applies one batched advance's per-lane outcomes; returns the
    /// lanes that advanced this round.
    fn absorb(&mut self, outcomes: Result<Vec<LaneOutcome>, GrbError>) -> Vec<usize> {
        match outcomes {
            Ok(lanes) => {
                let mut advanced = Vec::new();
                for (j, lane) in lanes.into_iter().enumerate() {
                    match lane {
                        LaneOutcome::Advanced => advanced.push(j),
                        LaneOutcome::Failed(e) => self.fail(j, e),
                        LaneOutcome::Skipped => {}
                    }
                }
                advanced
            }
            // Batch-level shape errors cannot be attributed to one lane;
            // they cost every still-active query.
            Err(e) => {
                for j in 0..self.active.len() {
                    if self.active[j] {
                        self.fail(j, e.clone());
                    }
                }
                Vec::new()
            }
        }
    }
}

/// msBFS: level-synchronous BFS from `sources.len()` sources in one
/// levelized sweep.
///
/// Per round, each live lane issues the serial algorithm's masked
/// assign, then **one** [`ops::mxm_frontier`] advances every live
/// frontier column through the adjacency — where k serial runs would
/// issue k separate `vxm` products per level. Column `j` of the result
/// is bit-identical to [`crate::bfs::bfs`] from `sources[j]`.
pub fn batched_bfs<R: Runtime>(
    g: &CsrGraph,
    sources: &[NodeId],
    rt: R,
) -> Vec<Result<BfsResult, GrbError>> {
    let n = g.num_nodes();
    let k = sources.len();
    let a: Matrix<u32> = Matrix::from_graph(g, |_| 1);

    let mut lanes = Lanes::new(k);
    let mut rounds = vec![0u32; k];
    let mut dist: MultiVector<u32> = MultiVector::new(n, k);
    let mut frontier: MultiVector<u32> = MultiVector::new(n, k);
    for (j, &src) in sources.iter().enumerate() {
        let init = ops::assign_scalar(
            dist.lane_mut(j),
            None::<&Vector<bool>>,
            0,
            &Descriptor::new(),
            rt,
        )
        .and_then(|()| frontier.lane_mut(j).set(src, 1));
        if let Err(e) = init {
            lanes.fail(j, e);
        }
    }

    let mut level = 0u32;
    while lanes.any_active() {
        level += 1;
        // Pass 1 per live lane: dist<frontier> = level (the serial
        // call, column-local).
        for j in 0..k {
            if !lanes.is_active(j) {
                continue;
            }
            if let Err(e) = ops::assign_scalar(
                dist.lane_mut(j),
                Some(frontier.lane(j)),
                level,
                &Descriptor::new(),
                rt,
            ) {
                lanes.fail(j, e);
            }
        }
        // Pass 2 per live lane: convergence check.
        for j in 0..k {
            if lanes.is_active(j) && frontier.lane(j).nvals() == 0 {
                lanes.retire(j);
            }
        }
        if !lanes.any_active() {
            break;
        }
        // Pass 3, batched: every live frontier advances through A at
        // once, masked per column by its own dist.
        let mut next: MultiVector<u32> = MultiVector::new(n, k);
        let advanced = lanes.absorb(ops::mxm_frontier(
            &mut next,
            Some(&dist),
            LorLand,
            &frontier,
            &a,
            &Descriptor::replace_complement(),
            &lanes.active.clone(),
            rt,
        ));
        for j in advanced {
            rounds[j] += 1;
            if next.lane(j).is_empty() {
                lanes.retire(j);
            }
        }
        frontier = next;
    }

    (0..k)
        .map(|j| match lanes.failed[j].take() {
            Some(e) => Err(e),
            None => {
                let mut out = vec![0u32; n];
                for (i, v) in dist.lane(j).iter() {
                    if v != 0 {
                        out[i as usize] = v;
                    }
                }
                Ok(BfsResult {
                    level: out,
                    rounds: rounds[j],
                })
            }
        })
        .collect()
}

/// Multi-seed personalized PageRank: `seeds.len()` teleport vectors run
/// `iters` rounds with the rank propagation batched.
///
/// Per round each live lane runs the serial scale / damp / fold passes
/// column-locally and the `PlusTimes` propagation is one batched
/// product. Column `j` is bit-identical to [`crate::pagerank::ppr`]
/// from `seeds[j]`.
pub fn batched_ppr<R: Runtime>(
    g: &CsrGraph,
    seeds: &[NodeId],
    iters: u32,
    rt: R,
) -> Vec<Result<Vec<f64>, GrbError>> {
    let n = g.num_nodes();
    let k = seeds.len();
    let a: Matrix<f64> = Matrix::from_graph(g, |_| 1.0);

    let mut lanes = Lanes::new(k);
    let inv_deg = match inv_degree(g) {
        Ok(v) => v,
        Err(e) => {
            return (0..k).map(|_| Err(e.clone())).collect();
        }
    };
    let mut base: Vec<Vector<f64>> = (0..k).map(|_| Vector::new(n)).collect();
    let mut pr: Vec<Vector<f64>> = (0..k).map(|_| Vector::new(n)).collect();
    for (j, &seed) in seeds.iter().enumerate() {
        match base[j].set(seed, 1.0 - DAMPING) {
            Ok(()) => pr[j] = base[j].clone(),
            Err(e) => lanes.fail(j, e),
        }
    }

    let mut contrib: MultiVector<f64> = MultiVector::new(n, k);
    let mut incoming: MultiVector<f64> = MultiVector::new(n, k);
    let mut next: Vec<Vector<f64>> = (0..k).map(|_| Vector::new(n)).collect();
    for _ in 0..iters {
        if !lanes.any_active() {
            break;
        }
        // Pass 1 per live lane: contrib = pr .* (1/deg).
        for (j, pr_j) in pr.iter().enumerate() {
            if !lanes.is_active(j) {
                continue;
            }
            if let Err(e) = ops::ewise_mult(contrib.lane_mut(j), Times, pr_j, &inv_deg, rt) {
                lanes.fail(j, e);
            }
        }
        // Pass 2, batched: incoming = contribᵀ · A for every live lane.
        let advanced = lanes.absorb(ops::mxm_frontier(
            &mut incoming,
            None::<&MultiVector<bool>>,
            PlusTimes,
            &contrib,
            &a,
            &Descriptor::new().with_replace(true),
            &lanes.active.clone(),
            rt,
        ));
        // Passes 3-4 per advanced lane: damp, fold into the rank.
        for j in advanced {
            ops::apply_inplace(incoming.lane_mut(j), |x| DAMPING * x, rt);
            match ops::ewise_add(&mut next[j], Plus, &base[j], incoming.lane(j), rt) {
                Ok(()) => std::mem::swap(&mut pr[j], &mut next[j]),
                Err(e) => lanes.fail(j, e),
            }
        }
    }

    (0..k)
        .map(|j| match lanes.failed[j].take() {
            Some(e) => Err(e),
            None => Ok((0..n as u32).map(|i| pr[j].get(i).unwrap_or(0.0)).collect()),
        })
        .collect()
}

/// Batched SSSP: bulk-synchronous Bellman-Ford over a k-column distance
/// matrix, the min-plus relaxation batched across sources.
///
/// Column `j` is bit-identical to [`crate::sssp::sssp_minplus`] from
/// `sources[j]` (and therefore equal to delta-stepping and Dijkstra —
/// integer min-plus distances are exact).
pub fn batched_sssp<R: Runtime>(
    g: &CsrGraph,
    sources: &[NodeId],
    rt: R,
) -> Vec<Result<MinPlusResult, GrbError>> {
    let n = g.num_nodes();
    let k = sources.len();
    let a: Matrix<u64> = Matrix::from_graph(g, u64::from);

    let mut lanes = Lanes::new(k);
    let mut rounds = vec![0u32; k];
    let mut dist: Vec<Vector<u64>> = (0..k).map(|_| Vector::new(n)).collect();
    let mut frontier: MultiVector<u64> = MultiVector::new(n, k);
    for (j, &src) in sources.iter().enumerate() {
        let init = ops::assign_scalar(
            &mut dist[j],
            None::<&Vector<bool>>,
            u64::MAX,
            &Descriptor::new(),
            rt,
        )
        .and_then(|()| dist[j].set(src, 0))
        .and_then(|()| frontier.lane_mut(j).set(src, 0));
        if let Err(e) = init {
            lanes.fail(j, e);
        }
    }

    loop {
        for j in 0..k {
            if lanes.is_active(j) && frontier.lane(j).nvals() == 0 {
                lanes.retire(j);
            }
        }
        if !lanes.any_active() {
            break;
        }
        // Pass 1, batched: relax every live frontier's out-edges at once.
        let mut cand: MultiVector<u64> = MultiVector::new(n, k);
        let advanced = lanes.absorb(ops::mxm_frontier(
            &mut cand,
            None::<&MultiVector<u64>>,
            MinPlus,
            &frontier,
            &a,
            &Descriptor::new().with_replace(true),
            &lanes.active.clone(),
            rt,
        ));
        // Passes 2-3 per advanced lane: strict-improvement filter, fold.
        let mut next_frontier: MultiVector<u64> = MultiVector::new(n, k);
        for j in advanced {
            rounds[j] += 1;
            let mut improved: Vector<u64> = Vector::new(n);
            let dj = &dist[j];
            ops::select_vector(
                &mut improved,
                cand.lane(j),
                |i, v| v < dj.get(i).unwrap_or(u64::MAX),
                rt,
            );
            if improved.nvals() == 0 {
                lanes.retire(j);
                continue;
            }
            let mut next: Vector<u64> = Vector::new(n);
            match ops::ewise_add(&mut next, Min, &dist[j], &improved, rt) {
                Ok(()) => {
                    dist[j] = next;
                    *next_frontier.lane_mut(j) = improved;
                }
                Err(e) => lanes.fail(j, e),
            }
        }
        frontier = next_frontier;
    }

    (0..k)
        .map(|j| match lanes.failed[j].take() {
            Some(e) => Err(e),
            None => Ok(MinPlusResult {
                dist: (0..n as u32)
                    .map(|i| dist[j].get(i).unwrap_or(u64::MAX))
                    .collect(),
                rounds: rounds[j],
            }),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bfs, pagerank, sssp};
    use graphblas::{GaloisRuntime, StaticRuntime};

    fn diamond() -> CsrGraph {
        graph::builder::from_weighted_edges(
            5,
            [(0, 1, 1), (0, 2, 4), (1, 2, 1), (2, 3, 1), (1, 3, 9), (3, 4, 2)],
        )
    }

    #[test]
    fn batched_bfs_columns_match_serial_runs() {
        let g = graph::gen::rmat(7, 8, graph::gen::RmatParams::default(), 5);
        let sources = [0u32, 3, 17, 0];
        let batched = batched_bfs(&g, &sources, GaloisRuntime);
        for (j, &src) in sources.iter().enumerate() {
            let serial = bfs::bfs(&g, src, GaloisRuntime).unwrap();
            let b = batched[j].as_ref().unwrap();
            assert_eq!(b.level, serial.level, "lane {j}");
            assert_eq!(b.rounds, serial.rounds, "lane {j} rounds");
        }
    }

    #[test]
    fn batched_ppr_columns_match_serial_runs() {
        let g = graph::gen::web_crawl(2, 30, 1);
        let seeds = [1u32, 5, 1];
        let batched = batched_ppr(&g, &seeds, 10, StaticRuntime);
        for (j, &seed) in seeds.iter().enumerate() {
            let serial = pagerank::ppr(&g, seed, 10, StaticRuntime).unwrap();
            assert_eq!(batched[j].as_ref().unwrap(), &serial, "lane {j} bitwise");
        }
    }

    #[test]
    fn batched_sssp_columns_match_serial_runs() {
        let g = diamond();
        let sources = [0u32, 1, 4];
        let batched = batched_sssp(&g, &sources, GaloisRuntime);
        for (j, &src) in sources.iter().enumerate() {
            let serial = sssp::sssp_minplus(&g, src, GaloisRuntime).unwrap();
            assert_eq!(batched[j].as_ref().unwrap(), &serial, "lane {j}");
        }
    }

    #[test]
    fn width_one_batch_equals_serial() {
        let g = diamond();
        let b = batched_bfs(&g, &[0], GaloisRuntime);
        let s = bfs::bfs(&g, 0, GaloisRuntime).unwrap();
        assert_eq!(b[0].as_ref().unwrap(), &s);
    }

    #[test]
    fn empty_batch_is_empty() {
        let g = diamond();
        assert!(batched_bfs(&g, &[], GaloisRuntime).is_empty());
        assert!(batched_ppr(&g, &[], 10, GaloisRuntime).is_empty());
        assert!(batched_sssp(&g, &[], GaloisRuntime).is_empty());
    }

    #[test]
    fn out_of_range_source_fails_only_its_lane() {
        let g = diamond();
        let batched = batched_bfs(&g, &[0, 99, 2], GaloisRuntime);
        assert!(batched[0].is_ok());
        assert!(batched[1].is_err(), "bad source is a lane failure");
        assert!(batched[2].is_ok());
        let serial = bfs::bfs(&g, 2, GaloisRuntime).unwrap();
        assert_eq!(batched[2].as_ref().unwrap(), &serial);
    }
}
