//! Breadth-first search (Algorithm 2 of the paper).
//!
//! A round-based, data-driven, push-style level bfs. Each round issues
//! **three** separate GraphBLAS calls — a masked scalar assign, an `nvals`
//! convergence check and a masked `vxm` — where the Lonestar version fuses
//! everything into one loop (Algorithm 1). That 3-vs-1 pass count is the
//! paper's *lightweight loops* limitation.
//!
//! The algorithm itself stays fixed-strategy push, but under the default
//! `STUDY_KERNEL=auto` policy the `vxm` underneath direction-optimizes
//! per round: sparse early frontiers scatter into pair lanes, saturated
//! mid-frontiers use the dense accumulator, and late rounds pull only
//! the still-unvisited vertices through the complemented mask — the
//! GraphBLAST-style optimization living *below* the API, invisible to
//! this code. `STUDY_KERNEL=push` restores the paper's cost model.

use graph::{CsrGraph, NodeId};
use graphblas::binops::LorLand;
use graphblas::{ops, Descriptor, GrbError, Matrix, Runtime, Vector};

/// Levels produced by [`bfs`]: `level[src] == 1`, unreached vertices hold
/// `0` (LAGraph's convention).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsResult {
    /// Per-vertex level (0 = unreached, source = 1).
    pub level: Vec<u32>,
    /// Number of rounds (vector-matrix products) executed.
    pub rounds: u32,
}

/// Runs LAGraph's basic bfs from `src` on the out-adjacency of `g`.
///
/// # Errors
///
/// Propagates [`GrbError`] from the underlying GraphBLAS calls (only
/// possible if `src` is out of range).
pub fn bfs<R: Runtime>(g: &CsrGraph, src: NodeId, rt: R) -> Result<BfsResult, GrbError> {
    let n = g.num_nodes();
    let a: Matrix<u32> = Matrix::from_graph(g, |_| 1);

    // dist must be dense: GrB_assign(dist, ..., 0, GrB_ALL, ...).
    let mut dist: Vector<u32> = Vector::new(n);
    ops::assign_scalar(&mut dist, None::<&Vector<bool>>, 0, &Descriptor::new(), rt)?;

    // frontier starts as the source alone.
    let mut frontier: Vector<u32> = Vector::new(n);
    frontier.set(src, 1)?;

    let mut level = 0u32;
    let mut rounds = 0u32;
    loop {
        level += 1;
        // Pass 1: dist<frontier> = level.
        ops::assign_scalar(&mut dist, Some(&frontier), level, &Descriptor::new(), rt)?;
        // Pass 2: convergence check.
        if frontier.nvals() == 0 {
            break;
        }
        // Pass 3: frontier<!dist> = frontier lor.land A, with replace.
        let mut next: Vector<u32> = Vector::new(n);
        ops::vxm(
            &mut next,
            Some(&dist),
            LorLand,
            &frontier,
            &a,
            &Descriptor::replace_complement(),
            rt,
        )?;
        frontier = next;
        rounds += 1;
        if frontier.is_empty() {
            break;
        }
    }

    let mut out = vec![0u32; n];
    for (i, v) in dist.iter() {
        if v != 0 {
            out[i as usize] = v;
        }
    }
    Ok(BfsResult { level: out, rounds })
}

/// Level-synchronous bfs producing a parent tree on the GraphBLAS API
/// (LAGraph's parent-output variant).
///
/// Frontier values carry `vertex id + 1`; expanding with the
/// `(min, first)` semiring makes each newly discovered vertex adopt its
/// **minimum-id** frontier in-neighbor as parent (deterministic). The
/// parent vector, used as a structural mask, doubles as the visited set.
/// Unreached vertices hold `u32::MAX`; `parent[src] == src`.
///
/// # Errors
///
/// Propagates [`GrbError`] from the GraphBLAS calls.
pub fn bfs_parent<R: Runtime>(g: &CsrGraph, src: NodeId, rt: R) -> Result<Vec<u32>, GrbError> {
    use graphblas::binops::{First, MinFirst};

    let n = g.num_nodes();
    let a: Matrix<u32> = Matrix::from_graph(g, |_| 1);
    // parent holds id+1 values so explicit entries are always non-zero.
    let mut parent: Vector<u32> = Vector::new(n);
    parent.set(src, src + 1)?;
    parent.to_dense();
    let mut frontier: Vector<u32> = Vector::new(n);
    frontier.set(src, src + 1)?;

    loop {
        // Pass 1: candidates adopt the min frontier id (+1) as parent,
        // restricted to unvisited vertices via the structural complement.
        let mut next: Vector<u32> = Vector::new(n);
        ops::vxm(
            &mut next,
            Some(&parent),
            MinFirst,
            &frontier,
            &a,
            &Descriptor::replace_complement().with_mask_structural(true),
            rt,
        )?;
        if next.nvals() == 0 {
            break;
        }
        // Pass 2: merge the new parents (First keeps established ones).
        let mut merged: Vector<u32> = Vector::new(n);
        ops::ewise_add(&mut merged, First, &parent, &next, rt)?;
        parent = merged;
        parent.to_dense();
        // Pass 3: rebuild the frontier carrying the frontier's own ids.
        let entries: Vec<(u32, u32)> = next.iter().map(|(j, _)| (j, j + 1)).collect();
        frontier = Vector::from_entries(n, entries)?;
    }

    Ok((0..n as u32)
        .map(|i| match parent.get(i) {
            Some(p) => p - 1,
            None => u32::MAX,
        })
        .collect())
}

/// Direction-optimizing bfs on the GraphBLAS API (the GraphBLAST
/// optimization of the paper's related work, §VI): push rounds use `vxm`
/// on the adjacency; once the frontier is heavy, pull rounds use `mxv` on
/// the transpose with the complemented-dist mask restricting work to
/// unvisited rows.
///
/// `gt` is the transpose of `g` (untimed preprocessing).
///
/// # Errors
///
/// Propagates [`GrbError`] from the GraphBLAS calls.
pub fn bfs_push_pull<R: Runtime>(
    g: &CsrGraph,
    gt: &CsrGraph,
    src: NodeId,
    rt: R,
) -> Result<BfsResult, GrbError> {
    const ALPHA: usize = 15;
    let n = g.num_nodes();
    assert_eq!(gt.num_nodes(), n, "transpose must match the graph");
    let a: Matrix<u32> = Matrix::from_graph(g, |_| 1);
    let at: Matrix<u32> = Matrix::from_graph(gt, |_| 1);

    let mut dist: Vector<u32> = Vector::new(n);
    ops::assign_scalar(&mut dist, None::<&Vector<bool>>, 0, &Descriptor::new(), rt)?;
    let mut frontier: Vector<u32> = Vector::new(n);
    frontier.set(src, 1)?;

    let mut level = 0u32;
    let mut rounds = 0u32;
    loop {
        level += 1;
        ops::assign_scalar(&mut dist, Some(&frontier), level, &Descriptor::new(), rt)?;
        if frontier.nvals() == 0 {
            break;
        }
        let frontier_edges: usize = frontier
            .iter()
            .map(|(i, _)| g.out_degree(i))
            .sum();
        let mut next: Vector<u32> = Vector::new(n);
        if frontier_edges * ALPHA > g.num_edges() {
            // Pull: unvisited rows of Aᵀ OR-AND the frontier.
            frontier.to_dense();
            ops::mxv(
                &mut next,
                Some(&dist),
                LorLand,
                &at,
                &frontier,
                &Descriptor::replace_complement(),
                rt,
            )?;
        } else {
            ops::vxm(
                &mut next,
                Some(&dist),
                LorLand,
                &frontier,
                &a,
                &Descriptor::replace_complement(),
                rt,
            )?;
        }
        frontier = next;
        rounds += 1;
        if frontier.is_empty() {
            break;
        }
    }

    let mut out = vec![0u32; n];
    for (i, v) in dist.iter() {
        if v != 0 {
            out[i as usize] = v;
        }
    }
    Ok(BfsResult { level: out, rounds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::builder::from_edges;
    use graph::transform::transpose;
    use graphblas::{GaloisRuntime, StaticRuntime};

    #[test]
    fn levels_on_a_path() {
        let g = from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let r = bfs(&g, 0, GaloisRuntime).unwrap();
        assert_eq!(r.level, vec![1, 2, 3, 4]);
        assert_eq!(r.rounds, 4, "one vxm per level plus the empty round");
    }

    #[test]
    fn unreachable_vertices_stay_zero() {
        let g = from_edges(4, [(0, 1), (2, 3)]);
        let r = bfs(&g, 0, GaloisRuntime).unwrap();
        assert_eq!(r.level, vec![1, 2, 0, 0]);
    }

    #[test]
    fn shortest_hops_win_on_diamond() {
        // 0 -> 1 -> 3, 0 -> 2 -> 3, 0 -> 3
        let g = from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3), (0, 3)]);
        let r = bfs(&g, 0, GaloisRuntime).unwrap();
        assert_eq!(r.level, vec![1, 2, 2, 2]);
    }

    #[test]
    fn backends_agree() {
        let g = graph::gen::rmat(8, 8, graph::gen::RmatParams::default(), 11);
        let src = g.max_out_degree_node();
        let ss = bfs(&g, src, StaticRuntime).unwrap();
        let gb = bfs(&g, src, GaloisRuntime).unwrap();
        assert_eq!(ss.level, gb.level);
    }

    #[test]
    fn self_loop_source_only() {
        let g = from_edges(2, [(0, 0)]);
        let r = bfs(&g, 0, GaloisRuntime).unwrap();
        assert_eq!(r.level, vec![1, 0]);
    }

    #[test]
    fn push_pull_matches_plain_bfs() {
        for seed in 0..3 {
            let g = graph::gen::rmat(9, 16, graph::gen::RmatParams::default(), seed);
            let gt = transpose(&g);
            let src = g.max_out_degree_node();
            let plain = bfs(&g, src, GaloisRuntime).unwrap();
            let pp = bfs_push_pull(&g, &gt, src, GaloisRuntime).unwrap();
            assert_eq!(plain.level, pp.level, "seed {seed}");
        }
    }

    #[test]
    fn parent_tree_on_a_path() {
        let g = from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let p = bfs_parent(&g, 0, GaloisRuntime).unwrap();
        assert_eq!(p, vec![0, 0, 1, 2]);
    }

    #[test]
    fn parent_tree_picks_min_id_parent() {
        // Both 1 and 2 reach 3 at the same level; MinFirst picks 1.
        let g = from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]);
        let p = bfs_parent(&g, 0, GaloisRuntime).unwrap();
        assert_eq!(p, vec![0, 0, 0, 1]);
    }

    #[test]
    fn parent_tree_marks_unreached() {
        let g = from_edges(3, [(0, 1)]);
        let p = bfs_parent(&g, 0, GaloisRuntime).unwrap();
        assert_eq!(p, vec![0, 0, u32::MAX]);
    }

    #[test]
    fn push_pull_on_path_stays_push() {
        let g = from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let gt = transpose(&g);
        let r = bfs_push_pull(&g, &gt, 0, GaloisRuntime).unwrap();
        assert_eq!(r.level, vec![1, 2, 3, 4]);
    }
}
