//! Incremental recompute on the matrix API: masked re-advance over the
//! delta'd adjacency.
//!
//! Each routine repairs a previous converged answer after a batch of
//! edge updates instead of recomputing from scratch. The matrix API has
//! no merged-view access path — every call operates on a [`Matrix`] — so
//! the caller hands these routines the **materialized merged graph**,
//! and the `Matrix::from_graph` rebuild is part of the API's absorption
//! cost (the study's question: which API absorbs updates more cheaply?).
//!
//! * [`bfs_repair`] — min-plus re-advance seeded from the dirty
//!   vertices; inserts can only lower 1-based levels, so relaxing to the
//!   fixed point reproduces the from-scratch answer bit-exactly.
//! * [`components_incremental`] — warm-start min-label hooking
//!   ([`crate::cc::connected_components_from`]): old labels stay valid
//!   coarse labels under insert-only updates.
//! * [`pagerank_converging`] — residual iteration `p += r; r = d·S·r`
//!   to a fixed tolerance, warm-started from the stale ranks. Fixed
//!   tolerance (not fixed rounds) is what makes warm and cold starts
//!   land on the same answer to well below the study's 1e-9 comparison
//!   tolerance.
//!
//! Deletes are handled by the caller falling back to a cold start of the
//! same routines (`study_core::delta` owns that policy): deletions can
//! raise bfs levels and split components, which monotone repair cannot
//! express.

use graph::{CsrGraph, NodeId};
use graphblas::binops::{Max, MinPlus, Plus, PlusTimes, Times};
use graphblas::{ops, Descriptor, GrbError, Matrix, Runtime, Vector};
use perfmon::trace::{self, DeltaKind, DeltaSpan, Event};
use std::collections::BTreeMap;
use std::time::Instant;

use crate::pagerank::DAMPING;

/// Residual tolerance of [`pagerank_converging`]. The remaining error
/// after convergence is at most `eps * d / (1 - d)` in every entry
/// (about `5.7e-12`), so two independently converged runs agree to well
/// below the study's 1e-9 pagerank comparison tolerance.
pub const PR_EPS: f64 = 1e-12;

/// Safety cap on residual rounds (the geometric decay reaches
/// [`PR_EPS`] in under 200 rounds on any graph).
pub const PR_MAX_ROUNDS: u32 = 10_000;

/// Records the repair span every incremental routine emits.
fn record_repair(frontier: u64, start: Instant) {
    trace::record(Event::Delta(DeltaSpan {
        seq: 0,
        kind: DeltaKind::Repair,
        delta_nnz: 0,
        layers: 0,
        touched: 0,
        repair_frontier: frontier,
        elapsed_ns: start.elapsed().as_nanos() as u64,
    }));
}

/// Repairs bfs levels (1-based, 0 = unreached) after edge inserts.
///
/// `old_level` holds the stale levels (shorter than `g.num_nodes()` when
/// updates grew the vertex set; missing tail vertices count as
/// unreached), and `dirty` the candidate improvements derived from the
/// inserted edges: for each insert `u -> v` with `old_level[u] > 0`, the
/// pair `(v, old_level[u] + 1)`. A full recompute is the degenerate
/// repair `bfs_repair(g, &[], &[(src, 1)], rt)`.
///
/// Each round advances the whole dirty frontier through one min-plus
/// product over the merged adjacency and keeps only the entries that
/// improve the current levels — the matrix API's "masked re-advance".
///
/// # Errors
///
/// Propagates [`GrbError`] from the GraphBLAS calls.
pub fn bfs_repair<R: Runtime>(
    g: &CsrGraph,
    old_level: &[u32],
    dirty: &[(NodeId, u32)],
    rt: R,
) -> Result<Vec<u32>, GrbError> {
    let start = Instant::now();
    let n = g.num_nodes();
    let a: Matrix<u32> = Matrix::from_graph(g, |_| 1);

    // Sparse level vector over the reached vertices.
    let mut dist: Vector<u32> = Vector::new(n);
    for (v, &l) in old_level.iter().enumerate() {
        if l > 0 {
            dist.set(v as u32, l)?;
        }
    }

    // Fold the dirty candidates (dedup to the minimum level) and keep
    // the actual improvements as the seed frontier.
    let mut seeds: BTreeMap<NodeId, u32> = BTreeMap::new();
    for &(v, l) in dirty {
        seeds
            .entry(v)
            .and_modify(|cur| *cur = (*cur).min(l))
            .or_insert(l);
    }
    let mut frontier: Vector<u32> = Vector::new(n);
    let mut seeded = 0u64;
    for (&v, &l) in &seeds {
        if dist.get(v).is_none_or(|cur| l < cur) {
            dist.set(v, l)?;
            frontier.set(v, l)?;
            seeded += 1;
        }
    }

    while !frontier.is_empty() {
        // One min-plus product: every neighbor of the frontier receives
        // the candidate level `frontier[u] + 1`.
        let mut cand: Vector<u32> = Vector::new(n);
        ops::vxm(
            &mut cand,
            None::<&Vector<u32>>,
            MinPlus,
            &frontier,
            &a,
            &Descriptor::new().with_replace(true),
            rt,
        )?;
        // Keep only the improvements; they form the next frontier.
        let mut next: Vector<u32> = Vector::new(n);
        for (v, l) in cand.iter() {
            if dist.get(v).is_none_or(|cur| l < cur) {
                dist.set(v, l)?;
                next.set(v, l)?;
            }
        }
        frontier = next;
    }

    let out = (0..n as u32).map(|v| dist.get(v).unwrap_or(0)).collect();
    record_repair(seeded, start);
    Ok(out)
}

/// Repairs component labels after insert-only updates by re-running the
/// min-label hooking loop warm-started from the stale labels (padded
/// with the identity for vertices the updates added).
///
/// # Errors
///
/// Propagates [`GrbError`] from the GraphBLAS calls.
pub fn components_incremental<R: Runtime>(
    g: &CsrGraph,
    old_labels: &[u32],
    rt: R,
) -> Result<crate::cc::CcResult, GrbError> {
    let start = Instant::now();
    let n = g.num_nodes();
    let mut init: Vec<u32> = Vec::with_capacity(n);
    init.extend_from_slice(&old_labels[..old_labels.len().min(n)]);
    init.extend(init.len() as u32..n as u32);
    let r = crate::cc::connected_components_from(g, Some(&init), rt)?;
    record_repair(n as u64, start);
    Ok(r)
}

/// Pagerank by residual iteration to the [`PR_EPS`] fixed point:
/// `r = b + d·S·p - p`, then `p += r; r = d·S·r` until `max|r|` drops
/// below tolerance. `warm` re-seeds from stale ranks (padded with 0 for
/// new vertices); `None` is a cold start (`p = 0`, so `r = b`).
///
/// Returns the converged ranks and the number of residual rounds — the
/// warm-start saving the bench's staleness metric observes.
///
/// # Errors
///
/// Propagates [`GrbError`] from the GraphBLAS calls.
pub fn pagerank_converging<R: Runtime>(
    g: &CsrGraph,
    warm: Option<&[f64]>,
    rt: R,
) -> Result<(Vec<f64>, u32), GrbError> {
    let start = Instant::now();
    let n = g.num_nodes();
    let a: Matrix<f64> = Matrix::from_graph(g, |_| 1.0);
    let inv_deg = crate::pagerank::inv_degree(g)?;
    let base = Vector::new_dense(n, (1.0 - DAMPING) / n as f64);

    let mut pr: Vector<f64> = Vector::new_dense(n, 0.0);
    if let Some(old) = warm {
        for (v, &x) in old.iter().take(n).enumerate() {
            pr.set(v as u32, x)?;
        }
    }

    // One full residual evaluation: r = base + d·S·pr - pr.
    let mut contrib: Vector<f64> = Vector::new(n);
    let mut incoming: Vector<f64> = Vector::new(n);
    let mut tmp: Vector<f64> = Vector::new(n);
    ops::ewise_mult(&mut contrib, Times, &pr, &inv_deg, rt)?;
    ops::vxm(
        &mut incoming,
        None::<&Vector<bool>>,
        PlusTimes,
        &contrib,
        &a,
        &Descriptor::new().with_replace(true),
        rt,
    )?;
    ops::apply_inplace(&mut incoming, |x| DAMPING * x, rt);
    let mut r: Vector<f64> = Vector::new(n);
    ops::ewise_add(&mut r, Plus, &base, &incoming, rt)?;
    let mut neg = pr.clone();
    ops::apply_inplace(&mut neg, |x| -x, rt);
    ops::ewise_add(&mut tmp, Plus, &r, &neg, rt)?;
    std::mem::swap(&mut r, &mut tmp);
    let frontier = r
        .iter()
        .filter(|&(_, x)| x.abs() > PR_EPS)
        .count() as u64;

    let mut rounds = 0u32;
    loop {
        let mut absr = r.clone();
        ops::apply_inplace(&mut absr, f64::abs, rt);
        if ops::reduce_vector(&absr, Max, rt) <= PR_EPS || rounds >= PR_MAX_ROUNDS {
            break;
        }
        rounds += 1;
        // p += r
        ops::ewise_add(&mut tmp, Plus, &pr, &r, rt)?;
        std::mem::swap(&mut pr, &mut tmp);
        // r = d·S·r
        ops::ewise_mult(&mut contrib, Times, &r, &inv_deg, rt)?;
        ops::vxm(
            &mut incoming,
            None::<&Vector<bool>>,
            PlusTimes,
            &contrib,
            &a,
            &Descriptor::new().with_replace(true),
            rt,
        )?;
        ops::apply_inplace(&mut incoming, |x| DAMPING * x, rt);
        std::mem::swap(&mut r, &mut incoming);
    }

    let out = (0..n as u32).map(|v| pr.get(v).unwrap_or(0.0)).collect();
    record_repair(frontier, start);
    Ok((out, rounds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::builder::from_edges;
    use graph::transform::symmetrize;
    use graphblas::GaloisRuntime;

    #[test]
    fn bfs_repair_from_scratch_equals_bfs() {
        let g = from_edges(6, [(0, 1), (1, 2), (2, 3), (0, 4), (4, 3)]);
        let full = crate::bfs::bfs(&g, 0, GaloisRuntime).unwrap().level;
        let repaired = bfs_repair(&g, &[], &[(0, 1)], GaloisRuntime).unwrap();
        assert_eq!(repaired, full);
    }

    #[test]
    fn bfs_repair_absorbs_an_insert() {
        // 0 -> 1 -> 2 -> 3; inserting 0 -> 3 drops 3 to level 2.
        let g0 = from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let old = crate::bfs::bfs(&g0, 0, GaloisRuntime).unwrap().level;
        let g1 = from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]);
        let repaired = bfs_repair(&g1, &old, &[(3, old[0] + 1)], GaloisRuntime).unwrap();
        let full = crate::bfs::bfs(&g1, 0, GaloisRuntime).unwrap().level;
        assert_eq!(repaired, full);
        assert_eq!(repaired[3], 2);
    }

    #[test]
    fn warm_component_labels_converge_to_minima() {
        let g0 = symmetrize(&from_edges(6, [(0, 1), (2, 3), (4, 5)]));
        let old = crate::cc::connected_components(&g0, GaloisRuntime)
            .unwrap()
            .component;
        // Bridge the 2-3 and 4-5 components.
        let g1 = symmetrize(&from_edges(6, [(0, 1), (2, 3), (4, 5), (3, 4)]));
        let warm = components_incremental(&g1, &old, GaloisRuntime).unwrap();
        let cold = crate::cc::connected_components(&g1, GaloisRuntime).unwrap();
        assert_eq!(warm.component, cold.component);
        assert_eq!(warm.component, vec![0, 0, 2, 2, 2, 2]);
    }

    #[test]
    fn converged_pagerank_is_start_independent() {
        let g = graph::gen::erdos_renyi(120, 700, 11);
        let (cold, _) = pagerank_converging(&g, None, GaloisRuntime).unwrap();
        // Warm start from garbage must land on the same fixed point.
        let garbage: Vec<f64> = (0..g.num_nodes()).map(|v| v as f64 * 1e-3).collect();
        let (warm, _) = pagerank_converging(&g, Some(&garbage), GaloisRuntime).unwrap();
        for (a, b) in cold.iter().zip(&warm) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        // Dangling vertices leak mass, so the total sits in ((1-d), 1].
        let sum: f64 = cold.iter().sum();
        assert!(sum > 1.0 - DAMPING && sum <= 1.0 + 1e-9, "mass {sum}");
    }

    #[test]
    fn warm_start_saves_rounds_after_a_small_update() {
        let g = graph::gen::erdos_renyi(200, 1200, 3);
        let (old, cold_rounds) = pagerank_converging(&g, None, GaloisRuntime).unwrap();
        let mut d = graph::DeltaGraph::with_threshold(g, 0);
        d.apply(&graph::EdgeBatch::new().insert(0, 7)).unwrap();
        let merged = d.materialize();
        let (_, warm_rounds) = pagerank_converging(&merged, Some(&old), GaloisRuntime).unwrap();
        assert!(
            warm_rounds < cold_rounds,
            "warm restart after one insert must converge faster \
             (warm {warm_rounds} vs cold {cold_rounds})"
        );
    }
}
