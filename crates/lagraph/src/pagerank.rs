//! PageRank: topology-driven (`pr-gb`) and residual-based (`pr-gb-res`).
//!
//! Both run the same power iteration
//! `pr' = (1-d)/n + d · Σ_{u→v} pr(u)/deg(u)` for a fixed number of
//! rounds (the study runs pr for 10 iterations). The residual variant
//! carries the per-round delta in a separate vector; mathematically it
//! produces identical values, but — as the paper's differential analysis
//! shows (§V-B, Table V) — the matrix API must touch the residual vector
//! in **two** separate API calls per round (update the rank, scale by the
//! out-degree), where the graph API fuses both into one loop.

use graph::CsrGraph;
use graphblas::binops::{Plus, PlusTimes, Times};
use graphblas::{ops, Descriptor, GrbError, Matrix, Runtime, Vector};

/// Damping factor used throughout the study.
pub const DAMPING: f64 = 0.85;

/// Builds the dense reciprocal-out-degree vector (dangling vertices get
/// an explicit 0 so they contribute nothing). Shared with the batched
/// multi-seed variant (`crate::batch`).
pub(crate) fn inv_degree(g: &CsrGraph) -> Result<Vector<f64>, GrbError> {
    let n = g.num_nodes();
    let mut v = Vector::new_dense(n, 0.0);
    for i in 0..n as u32 {
        let d = g.out_degree(i);
        if d > 0 {
            v.set(i, 1.0 / d as f64)?;
        }
    }
    Ok(v)
}

/// Topology-driven LAGraph pagerank (`pr-gb` in the paper): `iters`
/// rounds of four bulk passes each (scale, spmv, damp, add-base).
///
/// # Errors
///
/// Propagates [`GrbError`] from the GraphBLAS calls.
pub fn pagerank<R: Runtime>(
    g: &CsrGraph,
    iters: u32,
    rt: R,
) -> Result<Vec<f64>, GrbError> {
    let n = g.num_nodes();
    let a: Matrix<f64> = Matrix::from_graph(g, |_| 1.0);
    let inv_deg = inv_degree(g)?;
    // Initialized at (1-d)/n so the fixed-iteration result matches the
    // residual formulation exactly (the paper aligned LAGraph's pr with
    // Lonestar's answer the same way).
    let base = Vector::new_dense(n, (1.0 - DAMPING) / n as f64);
    let mut pr = base.clone();

    // Round temporaries live outside the loop so warm iterations recycle
    // their dense stores instead of reallocating them; every pass below
    // fully overwrites its output.
    let mut contrib: Vector<f64> = Vector::new(n);
    let mut incoming: Vector<f64> = Vector::new(n);
    let mut next: Vector<f64> = Vector::new(n);
    for _ in 0..iters {
        // Pass 1: contrib = pr .* (1/deg)
        ops::ewise_mult(&mut contrib, Times, &pr, &inv_deg, rt)?;
        // Pass 2: incoming = contribᵀ · A (push along out-edges)
        ops::vxm(
            &mut incoming,
            None::<&Vector<bool>>,
            PlusTimes,
            &contrib,
            &a,
            &Descriptor::new().with_replace(true),
            rt,
        )?;
        // Pass 3: damp
        ops::apply_inplace(&mut incoming, |x| DAMPING * x, rt);
        // Pass 4: pr = base + damped incoming
        ops::ewise_add(&mut next, Plus, &base, &incoming, rt)?;
        std::mem::swap(&mut pr, &mut next);
    }

    Ok((0..n as u32).map(|i| pr.get(i).unwrap_or(0.0)).collect())
}

/// Personalized PageRank seeded at one vertex: the same four bulk passes
/// per round as [`pagerank`], but the teleport vector is
/// `(1-d) · e_seed` instead of uniform, so rank mass radiates from the
/// seed. After `iters` rounds the iterate is the truncated series
/// `Σ_{t=0..iters} d^t (Mᵀ)^t b` with `b = (1-d)·e_seed` — the quantity
/// the batched multi-seed engine (`crate::batch::batched_ppr`) computes
/// per column.
///
/// # Errors
///
/// Propagates [`GrbError`] from the GraphBLAS calls (only possible if
/// `seed` is out of range, or under a memory budget / fault plan).
pub fn ppr<R: Runtime>(
    g: &CsrGraph,
    seed: graph::NodeId,
    iters: u32,
    rt: R,
) -> Result<Vec<f64>, GrbError> {
    let n = g.num_nodes();
    let a: Matrix<f64> = Matrix::from_graph(g, |_| 1.0);
    let inv_deg = inv_degree(g)?;
    // The sparse teleport vector: all restart mass sits on the seed.
    let mut base: Vector<f64> = Vector::new(n);
    base.set(seed, 1.0 - DAMPING)?;
    let mut pr = base.clone();

    // Hoisted round temporaries (see `pagerank`): each pass fully
    // overwrites its output, so warm rounds reuse their stores.
    let mut contrib: Vector<f64> = Vector::new(n);
    let mut incoming: Vector<f64> = Vector::new(n);
    let mut next: Vector<f64> = Vector::new(n);
    for _ in 0..iters {
        // Pass 1: contrib = pr .* (1/deg)
        ops::ewise_mult(&mut contrib, Times, &pr, &inv_deg, rt)?;
        // Pass 2: incoming = contribᵀ · A (push along out-edges)
        ops::vxm(
            &mut incoming,
            None::<&Vector<bool>>,
            PlusTimes,
            &contrib,
            &a,
            &Descriptor::new().with_replace(true),
            rt,
        )?;
        // Pass 3: damp
        ops::apply_inplace(&mut incoming, |x| DAMPING * x, rt);
        // Pass 4: pr = base + damped incoming
        ops::ewise_add(&mut next, Plus, &base, &incoming, rt)?;
        std::mem::swap(&mut pr, &mut next);
    }

    Ok((0..n as u32).map(|i| pr.get(i).unwrap_or(0.0)).collect())
}

/// Residual-based pagerank (`pr-gb-res`): identical math, carrying the
/// per-round residual explicitly like the Lonestar implementation.
///
/// # Errors
///
/// Propagates [`GrbError`] from the GraphBLAS calls.
pub fn pagerank_residual<R: Runtime>(
    g: &CsrGraph,
    iters: u32,
    rt: R,
) -> Result<Vec<f64>, GrbError> {
    let n = g.num_nodes();
    let a: Matrix<f64> = Matrix::from_graph(g, |_| 1.0);
    let inv_deg = inv_degree(g)?;
    let mut pr = Vector::new_dense(n, (1.0 - DAMPING) / n as f64);
    let mut residual = pr.clone();

    // Hoisted round temporaries (see `pagerank`): each pass fully
    // overwrites its output, so warm rounds reuse the dense stores.
    let mut scaled: Vector<f64> = Vector::new(n);
    let mut incoming: Vector<f64> = Vector::new(n);
    let mut next_pr: Vector<f64> = Vector::new(n);
    for _ in 0..iters {
        // API call 1 on the residual: scale by the out-degree reciprocal.
        ops::ewise_mult(&mut scaled, Times, &residual, &inv_deg, rt)?;
        // Propagate along out-edges.
        ops::vxm(
            &mut incoming,
            None::<&Vector<bool>>,
            PlusTimes,
            &scaled,
            &a,
            &Descriptor::new().with_replace(true),
            rt,
        )?;
        ops::apply_inplace(&mut incoming, |x| DAMPING * x, rt);
        // API call 2 on the residual: fold the new residual into the rank.
        ops::ewise_add(&mut next_pr, Plus, &pr, &incoming, rt)?;
        std::mem::swap(&mut pr, &mut next_pr);
        std::mem::swap(&mut residual, &mut incoming);
    }

    Ok((0..n as u32).map(|i| pr.get(i).unwrap_or(0.0)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::builder::from_edges;
    use graphblas::{GaloisRuntime, StaticRuntime};

    fn close(a: &[f64], b: &[f64], tol: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= tol)
    }

    #[test]
    fn uniform_cycle_has_uniform_rank() {
        let g = from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let pr = pagerank(&g, 10, GaloisRuntime).unwrap();
        // On a cycle the iterate stays uniform; after t rounds the value is
        // the truncated geometric series (1 - d^(t+1)) / n.
        let expected = (1.0 - DAMPING.powi(11)) / 4.0;
        assert!(close(&pr, &[expected; 4], 1e-12), "{pr:?}");
        // And it converges to 1/n with more rounds.
        let pr200 = pagerank(&g, 200, GaloisRuntime).unwrap();
        assert!(close(&pr200, &[0.25; 4], 1e-9), "{pr200:?}");
    }

    #[test]
    fn sink_like_vertex_accumulates_rank() {
        // star into vertex 3
        let g = from_edges(4, [(0, 3), (1, 3), (2, 3), (3, 0)]);
        let pr = pagerank(&g, 20, GaloisRuntime).unwrap();
        assert!(pr[3] > pr[0] && pr[3] > pr[1] && pr[3] > pr[2], "{pr:?}");
    }

    #[test]
    fn residual_variant_matches_topology_variant() {
        let g = graph::gen::rmat(7, 8, graph::gen::RmatParams::default(), 3);
        let a = pagerank(&g, 10, GaloisRuntime).unwrap();
        let b = pagerank_residual(&g, 10, GaloisRuntime).unwrap();
        assert!(close(&a, &b, 1e-12), "residual formulation is exact");
    }

    #[test]
    fn backends_agree() {
        let g = graph::gen::web_crawl(2, 30, 1);
        let ss = pagerank(&g, 10, StaticRuntime).unwrap();
        let gb = pagerank(&g, 10, GaloisRuntime).unwrap();
        assert!(close(&ss, &gb, 1e-12));
    }

    #[test]
    fn ppr_mass_decays_along_a_path() {
        // One out-edge per vertex: pr[i] = (1-d) * d^i after >= i rounds.
        let g = from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let pr = ppr(&g, 0, 10, GaloisRuntime).unwrap();
        let expect: Vec<f64> = (0..4).map(|i| 0.15 * DAMPING.powi(i)).collect();
        assert!(close(&pr, &expect, 1e-12), "{pr:?}");
    }

    #[test]
    fn ppr_seed_zero_rounds_is_the_teleport_vector() {
        let g = from_edges(3, [(0, 1), (1, 2)]);
        let pr = ppr(&g, 1, 0, GaloisRuntime).unwrap();
        assert!(close(&pr, &[0.0, 0.15, 0.0], 1e-15), "{pr:?}");
    }

    #[test]
    fn ppr_backends_agree_bitwise() {
        let g = graph::gen::web_crawl(2, 30, 1);
        let ss = ppr(&g, 5, 10, StaticRuntime).unwrap();
        let gb = ppr(&g, 5, 10, GaloisRuntime).unwrap();
        assert_eq!(ss, gb, "per-lane execution is deterministic");
    }

    #[test]
    fn ranks_sum_to_at_most_one() {
        // (dangling mass leaks, so the sum is <= 1)
        let g = from_edges(5, [(0, 1), (1, 2), (3, 2)]);
        let pr = pagerank(&g, 10, GaloisRuntime).unwrap();
        let total: f64 = pr.iter().sum();
        assert!(total <= 1.0 + 1e-9 && total > 0.2, "total {total}");
    }
}
