//! k-core decomposition with the matrix API (extension workload).
//!
//! The k-core is the maximal subgraph where every vertex keeps degree
//! ≥ k. The matrix formulation peels in bulk rounds: recompute all
//! degrees (`reduce_rows`), select the sub-threshold vertices, and filter
//! the matrix — three full passes per round, with the number of rounds
//! equal to the peeling depth. Compare `lonestar::kcore`, where a single
//! asynchronous work-list propagates removals with no rounds at all —
//! the same bulk-vs-fine-grained contrast the paper establishes for cc
//! and sssp.

use graph::CsrGraph;
use graphblas::binops::Plus;
use graphblas::{ops, GrbError, Matrix, Runtime, Vector};

/// Result of the matrix-based k-core computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KcoreResult {
    /// Whether each vertex belongs to the k-core.
    pub in_core: Vec<bool>,
    /// Directed edges remaining in the core.
    pub edges_remaining: usize,
    /// Bulk peeling rounds executed.
    pub rounds: u32,
}

/// Computes the k-core of a **symmetric, loop-free** graph.
///
/// # Panics
///
/// Panics if `k == 0`.
///
/// # Errors
///
/// Propagates [`GrbError`] from the GraphBLAS calls.
pub fn kcore<R: Runtime>(g: &CsrGraph, k: u32, rt: R) -> Result<KcoreResult, GrbError> {
    assert!(k > 0, "k-core requires k >= 1");
    let n = g.num_nodes();
    let mut c: Matrix<u64> = Matrix::from_graph(g, |_| 1);
    let mut alive = vec![true; n];
    let mut rounds = 0u32;

    loop {
        rounds += 1;
        // Pass 1: all degrees in bulk.
        let deg: Vector<u64> = ops::reduce_rows(&c, Plus, rt);
        // Pass 2: find sub-threshold vertices still alive.
        let mut doomed: Vector<u64> = Vector::new(n);
        ops::select_vector(
            &mut doomed,
            &deg,
            |i, d| alive[i as usize] && d < u64::from(k),
            rt,
        );
        // Also: alive vertices that lost ALL edges have no deg entry.
        let mut newly_dead: Vec<u32> = doomed.iter().map(|(i, _)| i).collect();
        for v in 0..n as u32 {
            if alive[v as usize] && deg.get(v).is_none() && g.out_degree(v) > 0 {
                newly_dead.push(v);
            }
        }
        if newly_dead.is_empty() {
            break;
        }
        for &v in &newly_dead {
            alive[v as usize] = false;
        }
        // Pass 3: filter the matrix to the surviving vertices.
        let keep = &alive;
        c = ops::select_matrix(&c, |i, j, _| keep[i as usize] && keep[j as usize], rt);
        if c.nvals() == 0 {
            break;
        }
    }

    // Isolated-from-the-start vertices are in the core only for k == 0
    // (never here); vertices with no surviving edges are out.
    let in_core: Vec<bool> = (0..n as u32)
        .map(|v| alive[v as usize] && c.row_nvals(v) >= k as usize)
        .collect();
    let edges_remaining = c.nvals();
    Ok(KcoreResult {
        in_core,
        edges_remaining,
        rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::builder::GraphBuilder;
    use graph::transform::symmetrize;
    use graphblas::GaloisRuntime;

    fn sym(edges: &[(u32, u32)], n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for &(s, d) in edges {
            b.push_edge(s, d, 1);
        }
        symmetrize(&b.build())
    }

    #[test]
    fn triangle_with_tail() {
        // triangle 0-1-2 plus tail 2-3-4: 2-core = the triangle.
        let g = sym(&[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)], 5);
        let r = kcore(&g, 2, GaloisRuntime).unwrap();
        assert_eq!(r.in_core, vec![true, true, true, false, false]);
        assert_eq!(r.edges_remaining, 6);
        assert!(r.rounds >= 2, "tail peels in two steps");
    }

    #[test]
    fn whole_clique_is_its_own_core() {
        let g = sym(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)], 4);
        let r = kcore(&g, 3, GaloisRuntime).unwrap();
        assert!(r.in_core.iter().all(|&x| x));
        let r4 = kcore(&g, 4, GaloisRuntime).unwrap();
        assert!(r4.in_core.iter().all(|&x| !x));
    }

    #[test]
    fn star_has_no_2_core() {
        let g = sym(&[(0, 1), (0, 2), (0, 3)], 4);
        let r = kcore(&g, 2, GaloisRuntime).unwrap();
        assert!(r.in_core.iter().all(|&x| !x));
        assert_eq!(r.edges_remaining, 0);
    }

    #[test]
    fn peel_depth_shows_in_rounds() {
        // A long path peels from both ends inward: rounds ~ n/2.
        let n = 20;
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = sym(&edges, n as usize);
        let r = kcore(&g, 2, GaloisRuntime).unwrap();
        assert!(r.in_core.iter().all(|&x| !x));
        assert!(r.rounds >= n / 2 - 1, "rounds {}", r.rounds);
    }
}
