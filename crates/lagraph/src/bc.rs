//! Betweenness centrality (Brandes) with the GraphBLAS API.
//!
//! The LAGraph formulation: the forward sweep is a sequence of masked
//! `vxm` calls whose per-level frontiers (path-count vectors) must all be
//! **materialized and kept** for the backward sweep; the backward sweep
//! then needs four more bulk passes per level (scale, restrict, pull,
//! accumulate). Contrast with `lonestar::bc`, which keeps the same
//! quantities in scalars inside two fused loops per level.

use graph::{CsrGraph, NodeId};
use graphblas::binops::{Div, First, Plus, PlusTimes, Times};
use graphblas::{ops, Descriptor, GrbError, Matrix, Runtime, Vector};

/// Result of the matrix-based betweenness computation.
#[derive(Debug, Clone, PartialEq)]
pub struct BcResult {
    /// Per-vertex centrality (unnormalized, endpoints excluded).
    pub centrality: Vec<f64>,
    /// Vectors materialized for the backward sweep (one per bfs level per
    /// source) — state the graph API never allocates.
    pub materialized_vectors: usize,
}

/// Brandes betweenness from `sources` over unweighted shortest paths.
///
/// # Errors
///
/// Propagates [`GrbError`] from the GraphBLAS calls.
pub fn betweenness<R: Runtime>(
    g: &CsrGraph,
    sources: &[NodeId],
    rt: R,
) -> Result<BcResult, GrbError> {
    let n = g.num_nodes();
    let a: Matrix<f64> = Matrix::from_graph(g, |_| 1.0);
    let mut centrality = Vector::new_dense(n, 0.0f64);
    let mut materialized_vectors = 0usize;

    for &s in sources {
        // paths: dense accumulated sigma; 0 marks unvisited (value mask).
        let mut paths: Vector<f64> = Vector::new_dense(n, 0.0);
        paths.set(s, 1.0)?;
        let mut frontier: Vector<f64> = Vector::new(n);
        frontier.set(s, 1.0)?;

        // Forward sweep: keep every level's path-count frontier.
        let mut sigma_levels: Vec<Vector<f64>> = vec![frontier.clone()];
        loop {
            let mut next: Vector<f64> = Vector::new(n);
            ops::vxm(
                &mut next,
                Some(&paths),
                PlusTimes,
                &frontier,
                &a,
                &Descriptor::replace_complement(),
                rt,
            )?;
            if next.nvals() == 0 {
                break;
            }
            // paths += next (union keeps old values, adds new sigmas).
            let mut new_paths: Vector<f64> = Vector::new(n);
            ops::ewise_add(&mut new_paths, Plus, &paths, &next, rt)?;
            paths = new_paths;
            sigma_levels.push(next.clone());
            materialized_vectors += 1;
            frontier = next;
        }

        // Backward sweep.
        let mut delta: Vector<f64> = Vector::new_dense(n, 0.0);
        for d in (1..sigma_levels.len()).rev() {
            // Pass 1: t = 1 + delta (dense apply).
            let mut t: Vector<f64> = Vector::new(n);
            ops::apply(&mut t, &delta, |x| 1.0 + x, rt)?;
            // Pass 2: t = t / paths (dense eWise).
            let mut scaled: Vector<f64> = Vector::new(n);
            ops::ewise_mult(&mut scaled, Div, &t, &paths, rt)?;
            // Pass 3: restrict to the level-d frontier structure.
            let mut w: Vector<f64> = Vector::new(n);
            ops::ewise_mult(&mut w, First, &scaled, &sigma_levels[d], rt)?;
            // Pass 4: pull contributions over out-edges: c = A · w.
            let mut c: Vector<f64> = Vector::new(n);
            ops::mxv(
                &mut c,
                None::<&Vector<f64>>,
                PlusTimes,
                &a,
                &w,
                &Descriptor::new(),
                rt,
            )?;
            // Pass 5: upd = paths .* c restricted to the level-(d-1)
            // frontier.
            let mut sc: Vector<f64> = Vector::new(n);
            ops::ewise_mult(&mut sc, Times, &paths, &c, rt)?;
            let mut upd: Vector<f64> = Vector::new(n);
            ops::ewise_mult(&mut upd, First, &sc, &sigma_levels[d - 1], rt)?;
            // Pass 6: delta += upd.
            let mut new_delta: Vector<f64> = Vector::new(n);
            ops::ewise_add(&mut new_delta, Plus, &delta, &upd, rt)?;
            delta = new_delta;
        }

        // centrality += delta, excluding the source.
        delta.set(s, 0.0)?;
        let mut new_centrality: Vector<f64> = Vector::new(n);
        ops::ewise_add(&mut new_centrality, Plus, &centrality, &delta, rt)?;
        centrality = new_centrality;
    }

    Ok(BcResult {
        centrality: (0..n as u32).map(|i| centrality.get(i).unwrap_or(0.0)).collect(),
        materialized_vectors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::builder::from_edges;
    use graph::transform::symmetrize;
    use graphblas::{GaloisRuntime, StaticRuntime};

    fn close(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-9)
    }

    #[test]
    fn path_center_dominates() {
        let g = symmetrize(&from_edges(3, [(0, 1), (1, 2)]));
        let all: Vec<u32> = (0..3).collect();
        let r = betweenness(&g, &all, GaloisRuntime).unwrap();
        assert!(close(&r.centrality, &[0.0, 2.0, 0.0]), "{:?}", r.centrality);
    }

    #[test]
    fn diamond_splits_dependency() {
        let g = from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]);
        let r = betweenness(&g, &[0], GaloisRuntime).unwrap();
        assert!(close(&r.centrality, &[0.0, 0.5, 0.5, 0.0]), "{:?}", r.centrality);
    }

    #[test]
    fn materialization_grows_with_depth() {
        // A longer path needs one kept vector per bfs level.
        let g = from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let r = betweenness(&g, &[0], GaloisRuntime).unwrap();
        assert_eq!(r.materialized_vectors, 5);
    }

    #[test]
    fn backends_agree() {
        let g = graph::gen::web_crawl(2, 25, 3);
        let sources: Vec<u32> = (0..5).collect();
        let ss = betweenness(&g, &sources, StaticRuntime).unwrap();
        let gb = betweenness(&g, &sources, GaloisRuntime).unwrap();
        assert!(close(&ss.centrality, &gb.centrality));
    }
}
