#![warn(missing_docs)]

//! # lagraph — matrix-based graph algorithms on the GraphBLAS API
//!
//! Rust ports of the LAGraph programs evaluated in *A Study of APIs for
//! Graph Analytics Workloads* (IISWC 2020), written purely against the
//! [`graphblas`] API. Every algorithm is generic over the
//! [`graphblas::Runtime`] backend, so the same code runs as
//! **LAGraph/SuiteSparse** (`StaticRuntime`) or **LAGraph/GaloisBLAS**
//! (`GaloisRuntime`) — the SS and GB columns of Table II.
//!
//! Variants match the paper's selections (§IV) and its differential
//! analysis (§V-B, Figure 3):
//!
//! | problem | function | paper variant |
//! |---|---|---|
//! | bfs | [`bfs::bfs`] | LAGraph basic (Algorithm 2) |
//! | cc | [`cc::connected_components`] | FastSV-style bounded pointer jumping (`cc-gb`) |
//! | ktruss | [`ktruss::ktruss`] | round-based support pruning |
//! | pr | [`pagerank::pagerank`] | topology-driven (`pr-gb`) |
//! | pr | [`pagerank::pagerank_residual`] | residual-based (`pr-gb-res`) |
//! | sssp | [`sssp::sssp_delta_stepping`] | bulk-synchronous delta-stepping (`sssp-gb`) |
//! | sssp | [`sssp::sssp_minplus`] | bucket-free min-plus Bellman-Ford (batch serial reference) |
//! | tc | [`tc::tc_sandia_dot`] | SandiaDot (`tc-gb` / `tc-gb-sort`) |
//! | tc | [`tc::tc_listing`] | triangle listing on a sorted DAG (`tc-gb-ll`) |
//!
//! Extensions beyond the paper's evaluation (documented in DESIGN.md §8):
//! [`bfs::bfs_push_pull`] (the GraphBLAST direction optimization of the
//! paper's related work), [`bfs::bfs_parent`] (parent-tree output),
//! [`bc::betweenness`] (the paper's motivating application),
//! [`kcore::kcore`] (bulk peeling), [`mis::mis`] (Luby's rounds),
//! [`pagerank::ppr`] (personalized PageRank) and the batched multi-source
//! engine [`batch`] (msBFS / multi-seed PPR / batched SSSP over a
//! multi-column frontier, `STUDY_BATCH` in the study runner).
//!
//! Every algorithm here is agnostic to vertex numbering: it answers in
//! whatever id space the input CSR uses. The study runner exploits
//! that for its `STUDY_ORDER` locality tier — it hands these functions
//! a permuted graph and translated source, then un-permutes the
//! answers, with no cooperation needed from this crate.

pub mod batch;
pub mod bc;
pub mod bfs;
pub mod cc;
pub mod incremental;
pub mod kcore;
pub mod ktruss;
pub mod mis;
pub mod pagerank;
pub mod sssp;
pub mod tc;
