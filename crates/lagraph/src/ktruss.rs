//! k-truss via round-based support pruning.
//!
//! Each round recomputes every surviving edge's support with a masked
//! SpGEMM (`C<C,struct> = C ⊗ Cᵀ` under the `plus_land` semiring) and then
//! drops edges with support `< k − 2` in a separate select pass. Edge
//! removals only become visible at the *end* of a round (Jacobi
//! iteration) — the paper measures that this costs the matrix version
//! ~1.6x more rounds than Lonestar's immediately-visible removals
//! (Gauss-Seidel), on top of materializing the support matrix every
//! round.

use graph::CsrGraph;
use graphblas::binops::PlusLand;
use graphblas::{ops, Descriptor, GrbError, Matrix, MethodHint, Runtime};

/// Result of the matrix-based ktruss computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KtrussResult {
    /// Directed edges remaining in the k-truss (each undirected edge
    /// counts twice).
    pub edges_remaining: usize,
    /// Rounds until the edge set stabilized.
    pub rounds: u32,
}

/// Computes the k-truss of a **symmetric, loop-free** graph.
///
/// # Panics
///
/// Panics if `k < 3` (the smallest meaningful truss).
///
/// # Errors
///
/// Propagates [`GrbError`] from the GraphBLAS calls.
pub fn ktruss<R: Runtime>(g: &CsrGraph, k: u32, rt: R) -> Result<KtrussResult, GrbError> {
    assert!(k >= 3, "k-truss requires k >= 3");
    let support_needed = u64::from(k - 2);
    let mut c: Matrix<u64> = Matrix::from_graph(g, |_| 1);

    let desc = Descriptor::new()
        .with_method(MethodHint::Dot)
        .with_mask_structural(true)
        .with_transpose_b(true);

    let mut rounds = 0u32;
    loop {
        rounds += 1;
        // Pass 1: materialize the support matrix S(i,j) = |N(i) ∩ N(j)|
        // for surviving edges (i,j).
        let support = ops::mxm(Some(&c), PlusLand, &c, &c, &desc, rt)?;
        // Pass 2: keep edges with enough support. The surviving entries
        // hold their supports, which are non-zero, so the next round's
        // `plus_land` semiring treats them as present — no value-reset
        // pass is needed.
        let before = c.nvals();
        c = ops::select_matrix(&support, |_, _, s| s >= support_needed, rt);
        if c.nvals() == before {
            break;
        }
        if c.nvals() == 0 {
            break;
        }
    }

    Ok(KtrussResult {
        edges_remaining: c.nvals(),
        rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::builder::GraphBuilder;
    use graph::transform::symmetrize;
    use graphblas::{GaloisRuntime, StaticRuntime};

    fn sym(edges: &[(u32, u32)], n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for &(s, d) in edges {
            b.push_edge(s, d, 1);
        }
        symmetrize(&b.build())
    }

    /// K4: every edge is in two triangles, so it is a 4-truss.
    fn k4() -> CsrGraph {
        sym(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)], 4)
    }

    #[test]
    fn k4_is_a_4_truss() {
        let r = ktruss(&k4(), 4, GaloisRuntime).unwrap();
        assert_eq!(r.edges_remaining, 12, "all 6 undirected edges survive");
    }

    #[test]
    fn k4_is_not_a_5_truss() {
        let r = ktruss(&k4(), 5, GaloisRuntime).unwrap();
        assert_eq!(r.edges_remaining, 0);
    }

    #[test]
    fn pendant_edges_are_pruned_at_k3() {
        // triangle 0-1-2 plus pendant edge 2-3
        let g = sym(&[(0, 1), (1, 2), (0, 2), (2, 3)], 4);
        let r = ktruss(&g, 3, GaloisRuntime).unwrap();
        assert_eq!(r.edges_remaining, 6, "only the triangle survives");
    }

    #[test]
    fn cascading_removal_takes_multiple_rounds() {
        // Two triangles sharing a vertex plus a tail: 0-1-2, 2-3-4, 4-5.
        let g = sym(&[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4), (4, 5)], 6);
        let r = ktruss(&g, 3, GaloisRuntime).unwrap();
        assert_eq!(r.edges_remaining, 12, "both triangles survive");
        assert!(r.rounds >= 2, "pruning the tail takes a round");
    }

    #[test]
    fn backends_agree() {
        let g = symmetrize(&graph::gen::web_crawl(3, 40, 3));
        let ss = ktruss(&g, 4, StaticRuntime).unwrap();
        let gb = ktruss(&g, 4, GaloisRuntime).unwrap();
        assert_eq!(ss.edges_remaining, gb.edges_remaining);
    }

    #[test]
    #[should_panic(expected = "k >= 3")]
    fn rejects_small_k() {
        let _ = ktruss(&k4(), 2, GaloisRuntime);
    }
}
