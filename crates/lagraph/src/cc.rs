//! Connected components via bounded pointer jumping (the FastSV-style
//! `cc-gb` variant).
//!
//! The paper's point for cc (§V-B): a matrix API can only perform a
//! *fixed* number of pointer-jumping steps per round as bulk operations,
//! whereas the graph API can short-circuit each vertex's parent chain
//! arbitrarily far (`cc-ls-sv`) or sample vertices (Afforest, `cc-ls`).
//! This implementation does the canonical bulk loop: min-label hooking
//! over edges (`mxv` with the `min_second` semiring), one bulk
//! pointer-jumping `extract` per round, and a bulk convergence reduction.

use graph::CsrGraph;
use graphblas::binops::{Min, MinSecond, Ne, Plus};
use graphblas::{ops, Descriptor, GrbError, Matrix, Runtime, Vector};

/// Result of the matrix-based connected-components run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CcResult {
    /// Per-vertex component label (the minimum vertex id in the
    /// component).
    pub component: Vec<u32>,
    /// Number of bulk rounds executed.
    pub rounds: u32,
}

/// Computes weakly-connected components of a **symmetric** graph.
///
/// The caller symmetrizes directed inputs first (the study does this as
/// untimed preprocessing for cc/tc/ktruss).
///
/// # Errors
///
/// Propagates [`GrbError`] from the GraphBLAS calls.
pub fn connected_components<R: Runtime>(g: &CsrGraph, rt: R) -> Result<CcResult, GrbError> {
    connected_components_from(g, None, rt)
}

/// [`connected_components`] with an optional warm-start labeling.
///
/// `init[i]` must be a vertex id in `i`'s component with
/// `init[init[i]] == init[i]` and `init[i] <= i` — exactly what a
/// previous converged run's labels satisfy after insert-only updates
/// (each old component stays connected, its minimum stays a root). The
/// hooking loop then converges to the component-wise minimum of the
/// initial labels, which is the new per-component minimum vertex id; on
/// an already-converged labeling it terminates after one verification
/// round. `None` starts from the identity labeling (a full recompute).
///
/// # Errors
///
/// Propagates [`GrbError`] from the GraphBLAS calls.
pub fn connected_components_from<R: Runtime>(
    g: &CsrGraph,
    init: Option<&[u32]>,
    rt: R,
) -> Result<CcResult, GrbError> {
    let n = g.num_nodes();
    let a: Matrix<u32> = Matrix::from_graph(g, |_| 1);

    // parent f = warm labels or identity, dense.
    let mut f: Vector<u32> = Vector::new(n);
    ops::assign_scalar(&mut f, None::<&Vector<bool>>, 0, &Descriptor::new(), rt)?;
    for i in 0..n as u32 {
        let l = match init {
            Some(labels) => labels[i as usize],
            None => i,
        };
        f.set(i, l)?;
    }

    let mut rounds = 0u32;
    loop {
        rounds += 1;
        // Pass 1 (hooking): mngp[i] = min over in-neighbors j of f[j].
        let mut mngp: Vector<u32> = Vector::new(n);
        ops::mxv(
            &mut mngp,
            None::<&Vector<u32>>,
            MinSecond,
            &a,
            &f,
            &Descriptor::new(),
            rt,
        )?;
        // Pass 2: f = min(f, mngp).
        let mut hooked: Vector<u32> = Vector::new(n);
        ops::ewise_add(&mut hooked, Min, &f, &mngp, rt)?;
        // Pass 3 (one bulk pointer-jumping step): f' = hooked[hooked].
        let indices: Vec<u32> = (0..n as u32)
            .map(|i| {
                hooked.get(i).ok_or(GrbError::IndexOutOfBounds {
                    index: i as usize,
                    bound: n,
                })
            })
            .collect::<Result<_, _>>()?;
        let mut jumped: Vector<u32> = Vector::new(n);
        ops::extract(&mut jumped, &hooked, &indices, rt)?;
        // Pass 4 (convergence): any label changed?
        let mut diff: Vector<u32> = Vector::new(n);
        ops::ewise_add(&mut diff, Ne, &f, &jumped, rt)?;
        let changed = ops::reduce_vector(&diff, Plus, rt);
        f = jumped;
        if changed == 0 {
            break;
        }
    }

    let component = (0..n as u32)
        .map(|i| {
            f.get(i).ok_or(GrbError::IndexOutOfBounds {
                index: i as usize,
                bound: n,
            })
        })
        .collect::<Result<_, _>>()?;
    Ok(CcResult { component, rounds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::builder::GraphBuilder;
    use graph::transform::symmetrize;
    use graphblas::{GaloisRuntime, StaticRuntime};

    fn sym(edges: &[(u32, u32)], n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for &(s, d) in edges {
            b.push_edge(s, d, 1);
        }
        symmetrize(&b.build())
    }

    #[test]
    fn two_components() {
        let g = sym(&[(0, 1), (1, 2), (3, 4)], 5);
        let r = connected_components(&g, GaloisRuntime).unwrap();
        assert_eq!(r.component, vec![0, 0, 0, 3, 3]);
    }

    #[test]
    fn isolated_vertices_are_their_own_component() {
        let g = sym(&[(0, 1)], 4);
        let r = connected_components(&g, GaloisRuntime).unwrap();
        assert_eq!(r.component, vec![0, 0, 2, 3]);
    }

    #[test]
    fn long_chain_converges() {
        let n = 200;
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = sym(&edges, n as usize);
        let r = connected_components(&g, GaloisRuntime).unwrap();
        assert!(r.component.iter().all(|&c| c == 0));
        assert!(
            r.rounds < 20,
            "pointer jumping must converge in O(log n) rounds, took {}",
            r.rounds
        );
    }

    #[test]
    fn backends_agree_on_random_graph() {
        let g = symmetrize(&graph::gen::erdos_renyi(200, 300, 5));
        let ss = connected_components(&g, StaticRuntime).unwrap();
        let gb = connected_components(&g, GaloisRuntime).unwrap();
        assert_eq!(ss.component, gb.component);
    }

    #[test]
    fn labels_are_component_minima() {
        let g = sym(&[(5, 9), (9, 7), (1, 2)], 10);
        let r = connected_components(&g, GaloisRuntime).unwrap();
        assert_eq!(r.component[5], 5);
        assert_eq!(r.component[9], 5);
        assert_eq!(r.component[7], 5);
        assert_eq!(r.component[1], 1);
        assert_eq!(r.component[2], 1);
    }
}
