//! Triangle counting: SandiaDot (`tc-gb`, `tc-gb-sort`) and triangle
//! listing on a degree-sorted DAG (`tc-gb-ll`).
//!
//! Both compute `Σ C` where `C<mask> = L ⊗.⊕ Uᵀ` under the `plus_pair`
//! semiring — i.e. for each edge, the size of the endpoints' neighbor
//! intersection. The matrix API must *materialize* `C` (one entry per
//! surviving edge) and then run a second reduction pass to total it; the
//! Lonestar version just bumps a counter inside the intersection loop.
//! That per-edge intermediate is the *materialization* overhead of §V-B.

use graph::transform::{lower_triangular, upper_triangular};
use graph::CsrGraph;
use graphblas::binops::{Plus, PlusPair};
use graphblas::{ops, Descriptor, GrbError, Matrix, MethodHint, Runtime};

/// Result of a matrix-based triangle count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcResult {
    /// Number of triangles.
    pub triangles: u64,
    /// Explicit entries materialized in the intermediate matrix `C`
    /// (the quantity Lonestar never allocates).
    pub materialized_nvals: usize,
}

/// SandiaDot triangle counting on a **symmetric, loop-free** graph:
/// `C<L,struct> = L · Uᵀ (plus_pair)`, `Σ C`.
///
/// Run on a degree-relabeled graph this is the paper's `tc-gb-sort`
/// variant; on the raw graph it is `tc-gb`.
///
/// # Errors
///
/// Propagates [`GrbError`] from the GraphBLAS calls.
pub fn tc_sandia_dot<R: Runtime>(g: &CsrGraph, rt: R) -> Result<TcResult, GrbError> {
    // Materialize the triangular halves — the "additional matrices derived
    // from the original graph" of the paper's memory analysis (§V-A3).
    let lower = upper_lower(g);
    let (l, u) = (&lower.0, &lower.1);
    let desc = Descriptor::new()
        .with_method(MethodHint::Dot)
        .with_mask_structural(true)
        .with_transpose_b(true);
    let c = ops::mxm(Some(l), PlusPair, l, u, &desc, rt)?;
    let triangles = ops::reduce_matrix(&c, Plus, rt);
    Ok(TcResult {
        triangles,
        materialized_nvals: c.nvals(),
    })
}

/// Triangle listing on a **degree-sorted, symmetric, loop-free** graph
/// (`tc-gb-ll`): orient each edge low→high id, then count
/// `C<D,struct> = D · Dᵀ (plus_pair)`.
///
/// Sorting bounds the oriented out-degrees, which is what lets this
/// variant avoid iterating over high-degree vertices (§V-B, tc).
///
/// # Errors
///
/// Propagates [`GrbError`] from the GraphBLAS calls.
pub fn tc_listing<R: Runtime>(sorted: &CsrGraph, rt: R) -> Result<TcResult, GrbError> {
    let d = Matrix::<u64>::from_graph_upper(sorted);
    let desc = Descriptor::new()
        .with_method(MethodHint::Dot)
        .with_mask_structural(true)
        .with_transpose_b(true);
    let c = ops::mxm(Some(&d), PlusPair, &d, &d, &desc, rt)?;
    let triangles = ops::reduce_matrix(&c, Plus, rt);
    Ok(TcResult {
        triangles,
        materialized_nvals: c.nvals(),
    })
}

fn upper_lower(g: &CsrGraph) -> (Matrix<u64>, Matrix<u64>) {
    let l = lower_triangular(g);
    let u = upper_triangular(g);
    (
        Matrix::from_graph(&l, |_| 1),
        Matrix::from_graph(&u, |_| 1),
    )
}

/// Convenience: the strict upper triangle of a graph as a matrix.
trait UpperExt {
    fn from_graph_upper(g: &CsrGraph) -> Matrix<u64>;
}

impl UpperExt for Matrix<u64> {
    fn from_graph_upper(g: &CsrGraph) -> Matrix<u64> {
        Matrix::from_graph(&upper_triangular(g), |_| 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::builder::GraphBuilder;
    use graph::transform::{sort_by_degree, symmetrize};
    use graphblas::{GaloisRuntime, StaticRuntime};

    fn sym(edges: &[(u32, u32)], n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for &(s, d) in edges {
            b.push_edge(s, d, 1);
        }
        symmetrize(&b.build())
    }

    fn naive_triangles(g: &CsrGraph) -> u64 {
        let mut count = 0u64;
        for v in 0..g.num_nodes() as u32 {
            for a in g.neighbors(v) {
                for b in g.neighbors(v) {
                    if a < b && a > v && g.neighbors(a).any(|x| x == b) {
                        count += 1;
                    }
                }
            }
        }
        count
    }

    #[test]
    fn one_triangle() {
        let g = sym(&[(0, 1), (1, 2), (0, 2)], 3);
        assert_eq!(tc_sandia_dot(&g, GaloisRuntime).unwrap().triangles, 1);
    }

    #[test]
    fn k4_has_four_triangles() {
        let g = sym(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)], 4);
        assert_eq!(tc_sandia_dot(&g, GaloisRuntime).unwrap().triangles, 4);
    }

    #[test]
    fn triangle_free_graph_counts_zero() {
        let g = sym(&[(0, 1), (1, 2), (2, 3), (3, 0)], 4); // 4-cycle
        let r = tc_sandia_dot(&g, GaloisRuntime).unwrap();
        assert_eq!(r.triangles, 0);
        assert_eq!(r.materialized_nvals, 0);
    }

    #[test]
    fn listing_matches_sandia_on_web_graph() {
        let g = symmetrize(&graph::gen::web_crawl(3, 50, 7));
        let sandia = tc_sandia_dot(&g, GaloisRuntime).unwrap();
        let (sorted, _) = sort_by_degree(&g);
        let listing = tc_listing(&sorted, GaloisRuntime).unwrap();
        assert_eq!(sandia.triangles, listing.triangles);
        assert_eq!(sandia.triangles, naive_triangles(&g));
    }

    #[test]
    fn sorting_does_not_change_counts() {
        let g = symmetrize(&graph::gen::erdos_renyi(120, 700, 13));
        let raw = tc_sandia_dot(&g, GaloisRuntime).unwrap();
        let (sorted, _) = sort_by_degree(&g);
        let srt = tc_sandia_dot(&sorted, GaloisRuntime).unwrap();
        assert_eq!(raw.triangles, srt.triangles);
    }

    #[test]
    fn backends_agree() {
        let g = symmetrize(&graph::gen::community(150, 12, 2).into_unweighted());
        let ss = tc_sandia_dot(&g, StaticRuntime).unwrap();
        let gb = tc_sandia_dot(&g, GaloisRuntime).unwrap();
        assert_eq!(ss.triangles, gb.triangles);
    }

    #[test]
    fn materialization_tracks_triangle_edges() {
        let g = sym(&[(0, 1), (1, 2), (0, 2)], 3);
        let r = tc_sandia_dot(&g, GaloisRuntime).unwrap();
        assert!(r.materialized_nvals >= 1, "C holds per-edge counts");
    }
}
