//! Breadth-first search with the graph API (Algorithm 1 of the paper).
//!
//! Round-based and data-driven like the LAGraph version, but each round is
//! **one** fused loop over the frontier: the distance update and the
//! next-frontier insertion happen together, so the vertex data is touched
//! once per round instead of once per API call.

use galois_rt::InsertBag;
use graph::{CsrGraph, NodeId};
use std::sync::atomic::{AtomicU32, Ordering};

/// Sentinel distance for unvisited vertices (Lonestar's `DIST_INFINITY`).
pub const DIST_INFINITY: u32 = u32::MAX;

/// Levels produced by [`bfs`]: `level[src] == 1`, unreached vertices hold
/// `0` (normalized to match the LAGraph output for cross-checking).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsResult {
    /// Per-vertex level (0 = unreached, source = 1).
    pub level: Vec<u32>,
    /// Rounds executed (frontier expansions).
    pub rounds: u32,
}

/// Runs round-based data-driven bfs from `src`.
pub fn bfs(g: &CsrGraph, src: NodeId) -> BfsResult {
    let n = g.num_nodes();
    let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(DIST_INFINITY)).collect();
    dist[src as usize].store(1, Ordering::Relaxed);

    let mut curr: Vec<NodeId> = vec![src];
    let mut level = 1u32;
    let mut rounds = 0u32;
    while !curr.is_empty() {
        rounds += 1;
        level += 1;
        let next = InsertBag::new();
        // The single fused loop of Algorithm 1: visit, mark and enqueue.
        galois_rt::do_all(0..curr.len(), |p| {
            let node = curr[p];
            perfmon::touch_ref(&curr[p]);
            for e in g.edge_range(node) {
                let dst = g.edge_dst(e);
                perfmon::instr(2);
                perfmon::touch_ref(&g.dests()[e]);
                perfmon::touch_ref(&dist[dst as usize]);
                if dist[dst as usize].load(Ordering::Relaxed) == DIST_INFINITY
                    && dist[dst as usize]
                        .compare_exchange(
                            DIST_INFINITY,
                            level,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        )
                        .is_ok()
                {
                    next.push(dst);
                }
            }
        });
        let mut next = next;
        next.drain_into(&mut curr);
    }

    let level = dist
        .into_iter()
        .map(|d| {
            let d = d.into_inner();
            if d == DIST_INFINITY {
                0
            } else {
                d
            }
        })
        .collect();
    BfsResult { level, rounds }
}

/// Sentinel parent for unreached vertices.
pub const NO_PARENT: u32 = u32::MAX;

/// Round-based bfs producing a parent tree (the GAP-benchmark output
/// form): `parent[src] == src`, unreached vertices hold [`NO_PARENT`].
///
/// The parent of a vertex is *some* in-neighbor one level closer to the
/// source (races pick the winner, as in Lonestar); validate with
/// level-consistency rather than exact equality.
pub fn bfs_parent(g: &CsrGraph, src: NodeId) -> Vec<u32> {
    let n = g.num_nodes();
    let parent: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(NO_PARENT)).collect();
    parent[src as usize].store(src, Ordering::Relaxed);

    let mut curr: Vec<NodeId> = vec![src];
    while !curr.is_empty() {
        let next = InsertBag::new();
        galois_rt::do_all(0..curr.len(), |p| {
            let node = curr[p];
            for e in g.edge_range(node) {
                let dst = g.edge_dst(e) as usize;
                perfmon::instr(2);
                perfmon::touch_ref(&parent[dst]);
                if parent[dst].load(Ordering::Relaxed) == NO_PARENT
                    && parent[dst]
                        .compare_exchange(NO_PARENT, node, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                {
                    next.push(dst as NodeId);
                }
            }
        });
        let mut next = next;
        next.drain_into(&mut curr);
    }

    parent.into_iter().map(AtomicU32::into_inner).collect()
}

/// Direction-optimizing bfs (Beamer et al.): push from the frontier while
/// it is small, switch to pulling over unvisited vertices once the
/// frontier covers a large fraction of the edges.
///
/// This is the optimization the paper's related work credits GraphBLAST
/// with on the matrix side; expressed in the graph API it is a few lines
/// inside the same fused round loop. `gt` is the transpose (in-adjacency)
/// of `g`, preprocessing shared with pagerank.
pub fn bfs_direction_optimizing(g: &CsrGraph, gt: &CsrGraph, src: NodeId) -> BfsResult {
    // Heuristic thresholds from the GAP benchmark suite (alpha = 15).
    const ALPHA: usize = 15;
    let n = g.num_nodes();
    assert_eq!(gt.num_nodes(), n, "transpose must match the graph");
    let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(DIST_INFINITY)).collect();
    dist[src as usize].store(1, Ordering::Relaxed);

    let mut curr: Vec<NodeId> = vec![src];
    let mut level = 1u32;
    let mut rounds = 0u32;
    while !curr.is_empty() {
        rounds += 1;
        level += 1;
        let frontier_edges: usize = curr.iter().map(|&v| g.out_degree(v)).sum();
        let next = InsertBag::new();
        if frontier_edges * ALPHA > g.num_edges() {
            // Pull round: every unvisited vertex scans its in-edges for a
            // frontier parent (early exit on first hit).
            galois_rt::do_all(0..n, |v| {
                if dist[v].load(Ordering::Relaxed) != DIST_INFINITY {
                    return;
                }
                for e in gt.edge_range(v as NodeId) {
                    let u = gt.edge_dst(e) as usize;
                    perfmon::instr(2);
                    perfmon::touch_ref(&dist[u]);
                    if dist[u].load(Ordering::Relaxed) == level - 1 {
                        dist[v].store(level, Ordering::Relaxed);
                        next.push(v as NodeId);
                        break;
                    }
                }
            });
        } else {
            // Push round, identical to the fused loop of `bfs`.
            galois_rt::do_all(0..curr.len(), |p| {
                let node = curr[p];
                for e in g.edge_range(node) {
                    let dst = g.edge_dst(e);
                    perfmon::instr(2);
                    perfmon::touch_ref(&dist[dst as usize]);
                    if dist[dst as usize].load(Ordering::Relaxed) == DIST_INFINITY
                        && dist[dst as usize]
                            .compare_exchange(
                                DIST_INFINITY,
                                level,
                                Ordering::Relaxed,
                                Ordering::Relaxed,
                            )
                            .is_ok()
                    {
                        next.push(dst);
                    }
                }
            });
        }
        let mut next = next;
        next.drain_into(&mut curr);
    }

    let level = dist
        .into_iter()
        .map(|d| {
            let d = d.into_inner();
            if d == DIST_INFINITY {
                0
            } else {
                d
            }
        })
        .collect();
    BfsResult { level, rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::builder::from_edges;

    #[test]
    fn levels_on_a_path() {
        let g = from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let r = bfs(&g, 0);
        assert_eq!(r.level, vec![1, 2, 3, 4]);
        assert_eq!(r.rounds, 4, "one round per frontier, including the last");
    }

    #[test]
    fn unreachable_vertices_are_zero() {
        let g = from_edges(4, [(0, 1), (2, 3)]);
        assert_eq!(bfs(&g, 0).level, vec![1, 2, 0, 0]);
    }

    #[test]
    fn each_vertex_visited_once_on_diamond() {
        let g = from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3), (0, 3)]);
        assert_eq!(bfs(&g, 0).level, vec![1, 2, 2, 2]);
    }

    #[test]
    fn matches_lagraph_on_random_graphs() {
        for seed in 0..3 {
            let g = graph::gen::rmat(9, 8, graph::gen::RmatParams::default(), seed);
            let src = g.max_out_degree_node();
            let ls = bfs(&g, src);
            let gb = lagraph_bfs_reference(&g, src);
            assert_eq!(ls.level, gb, "seed {seed}");
        }
    }

    /// Serial reference with the same level convention.
    fn lagraph_bfs_reference(g: &CsrGraph, src: NodeId) -> Vec<u32> {
        let (levels, _, _) = graph::stats::bfs_levels(g, src);
        levels
            .into_iter()
            .map(|l| if l == u32::MAX { 0 } else { l + 1 })
            .collect()
    }

    #[test]
    fn parent_tree_is_level_consistent() {
        let g = graph::gen::rmat(9, 8, graph::gen::RmatParams::default(), 4);
        let src = g.max_out_degree_node();
        let parents = bfs_parent(&g, src);
        let levels = lagraph_bfs_reference(&g, src);
        assert_eq!(parents[src as usize], src);
        for v in 0..g.num_nodes() as u32 {
            if v == src {
                continue;
            }
            match levels[v as usize] {
                0 => assert_eq!(parents[v as usize], NO_PARENT, "unreached {v}"),
                l => {
                    let p = parents[v as usize];
                    assert_eq!(levels[p as usize], l - 1, "parent level of {v}");
                    assert!(g.neighbors(p).any(|x| x == v), "edge {p}->{v} exists");
                }
            }
        }
    }

    #[test]
    fn direction_optimizing_matches_plain_bfs() {
        for seed in 0..3 {
            let g = graph::gen::rmat(10, 16, graph::gen::RmatParams::default(), seed);
            let gt = graph::transform::transpose(&g);
            let src = g.max_out_degree_node();
            let plain = bfs(&g, src);
            let dirop = bfs_direction_optimizing(&g, &gt, src);
            assert_eq!(plain.level, dirop.level, "seed {seed}");
        }
    }

    #[test]
    fn direction_optimizing_uses_pull_on_dense_frontiers() {
        // A dense power-law graph reaches almost everything in one hop
        // from the hub, forcing at least one pull round.
        let g = graph::gen::preferential_attachment(2000, 10, false, 1);
        let gt = graph::transform::transpose(&g);
        let src = g.max_out_degree_node();
        let dirop = bfs_direction_optimizing(&g, &gt, src);
        let plain = bfs(&g, src);
        assert_eq!(dirop.level, plain.level);
    }

    #[test]
    fn large_grid_terminates() {
        let g = graph::gen::grid_road(40, 40, 1);
        let r = bfs(&g, 0);
        assert!(r.level.iter().all(|&l| l != 0), "grid is connected");
        // Diameter-bound rounds (random highway shortcuts may cut a few
        // hops, hence the slack).
        assert!(r.rounds >= 40, "rounds {}", r.rounds);
    }
}
