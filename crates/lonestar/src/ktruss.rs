//! k-truss with immediately visible edge removals.
//!
//! Like LAGraph, this is round-based: every surviving edge recomputes its
//! support each round. Unlike LAGraph, a removal takes effect the moment
//! it happens — later support computations *in the same round* already see
//! the edge as gone (Gauss-Seidel iteration). The paper measures that
//! LAGraph's end-of-round visibility (Jacobi) costs ~1.6x more rounds.
//! No support matrix is materialized: support is a scalar in the loop.

use graph::{CsrGraph, NodeId};
use std::sync::atomic::{AtomicBool, Ordering};

/// Result of the graph-API ktruss computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KtrussResult {
    /// Directed edges remaining (each undirected edge counts twice).
    pub edges_remaining: usize,
    /// Rounds until stabilization.
    pub rounds: u32,
}

/// Computes the k-truss of a **symmetric, loop-free** graph.
///
/// # Panics
///
/// Panics if `k < 3`.
pub fn ktruss(g: &CsrGraph, k: u32) -> KtrussResult {
    assert!(k >= 3, "k-truss requires k >= 3");
    let needed = (k - 2) as usize;
    let m = g.num_edges();
    let alive: Vec<AtomicBool> = (0..m).map(|_| AtomicBool::new(true)).collect();

    // Locates the slot of edge (u, v) via binary search in u's sorted
    // neighbor list.
    let edge_slot = |u: NodeId, v: NodeId| -> Option<usize> {
        let range = g.edge_range(u);
        let nbrs = g.neighbor_slice(u);
        nbrs.binary_search(&v).ok().map(|p| range.start + p)
    };

    let mut rounds = 0u32;
    loop {
        rounds += 1;
        let removed = galois_rt::ReduceLogicalOr::new();
        galois_rt::do_all(0..g.num_nodes(), |v| {
            let v = v as NodeId;
            for e in g.edge_range(v) {
                let u = g.edge_dst(e);
                // Process each undirected edge once per round.
                if u <= v {
                    continue;
                }
                perfmon::touch_ref(&alive[e]);
                if !alive[e].load(Ordering::Relaxed) {
                    continue;
                }
                // Count triangles through currently-alive edges; bail out
                // early once the edge clearly survives.
                let mut support = 0usize;
                let (mut p, mut q) = (g.edge_range(v).start, g.edge_range(u).start);
                let (pe, qe) = (g.edge_range(v).end, g.edge_range(u).end);
                while p < pe && q < qe && support < needed {
                    perfmon::instr(2);
                    perfmon::touch_ref(&g.dests()[p]);
                    perfmon::touch_ref(&g.dests()[q]);
                    let (a, b) = (g.edge_dst(p), g.edge_dst(q));
                    match a.cmp(&b) {
                        std::cmp::Ordering::Less => p += 1,
                        std::cmp::Ordering::Greater => q += 1,
                        std::cmp::Ordering::Equal => {
                            // Triangle v-u-a: all three edges must be alive.
                            if alive[p].load(Ordering::Relaxed)
                                && alive[q].load(Ordering::Relaxed)
                            {
                                support += 1;
                            }
                            p += 1;
                            q += 1;
                        }
                    }
                }
                if support < needed {
                    // Remove both directions immediately (visible to all
                    // threads within this round).
                    alive[e].store(false, Ordering::Relaxed);
                    if let Some(rev) = edge_slot(u, v) {
                        alive[rev].store(false, Ordering::Relaxed);
                    }
                    removed.update(true);
                }
            }
        });
        if !removed.reduce() {
            break;
        }
    }

    let edges_remaining = alive
        .iter()
        .filter(|a| a.load(Ordering::Relaxed))
        .count();
    KtrussResult {
        edges_remaining,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::builder::GraphBuilder;
    use graph::transform::symmetrize;

    fn sym(edges: &[(u32, u32)], n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for &(s, d) in edges {
            b.push_edge(s, d, 1);
        }
        symmetrize(&b.build())
    }

    fn k4() -> CsrGraph {
        sym(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)], 4)
    }

    #[test]
    fn k4_is_a_4_truss_but_not_5() {
        assert_eq!(ktruss(&k4(), 4).edges_remaining, 12);
        assert_eq!(ktruss(&k4(), 5).edges_remaining, 0);
    }

    #[test]
    fn pendant_edge_is_pruned() {
        let g = sym(&[(0, 1), (1, 2), (0, 2), (2, 3)], 4);
        assert_eq!(ktruss(&g, 3).edges_remaining, 6);
    }

    #[test]
    fn matches_lagraph_on_web_graphs() {
        for seed in 0..2 {
            let g = symmetrize(&graph::gen::web_crawl(3, 40, seed));
            for k in [3, 4, 5] {
                let ls = ktruss(&g, k);
                let gb = lagraph::ktruss::ktruss(&g, k, graphblas::GaloisRuntime).unwrap();
                assert_eq!(
                    ls.edges_remaining, gb.edges_remaining,
                    "seed {seed}, k {k}"
                );
            }
        }
    }

    #[test]
    fn immediate_visibility_converges_in_no_more_rounds() {
        // The Gauss-Seidel version should never need more rounds than the
        // Jacobi (LAGraph) version.
        let g = symmetrize(&graph::gen::community(120, 10, 1).into_unweighted());
        let ls = ktruss(&g, 4);
        let gb = lagraph::ktruss::ktruss(&g, 4, graphblas::GaloisRuntime).unwrap();
        assert_eq!(ls.edges_remaining, gb.edges_remaining);
        assert!(ls.rounds <= gb.rounds, "ls {} vs gb {}", ls.rounds, gb.rounds);
    }

    #[test]
    #[should_panic(expected = "k >= 3")]
    fn rejects_small_k() {
        let _ = ktruss(&k4(), 2);
    }
}
