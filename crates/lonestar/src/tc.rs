//! Triangle counting by listing on a degree-sorted graph (`tc-ls`).
//!
//! The algorithm the study's Lonestar uses: relabel vertices by degree
//! (preprocessing, untimed), then for every edge `(v, u)` with `v < u`
//! intersect the neighbor lists counting common vertices `w > u`
//! (runtime symmetry breaking: each triangle `v < u < w` counted once).
//! The count lives in a per-thread reducer — **nothing is materialized**,
//! which is exactly what separates `ls` from `gb-ll` in Figure 3(b) and
//! Table V.

use galois_rt::ReduceSum;
use graph::{CsrGraph, NodeId};

/// Counts triangles of a **symmetric, loop-free, degree-sorted** graph.
///
/// The caller performs the degree relabeling
/// ([`graph::transform::sort_by_degree`]); the paper treats that as
/// untimed preprocessing shared with the `gb-sort`/`gb-ll` variants.
pub fn tc(sorted: &CsrGraph) -> u64 {
    let count = ReduceSum::new();
    galois_rt::do_all(0..sorted.num_nodes(), |v| {
        let v = v as NodeId;
        let vn = sorted.neighbor_slice(v);
        for (i, &u) in vn.iter().enumerate() {
            perfmon::instr(1);
            perfmon::touch_ref(&vn[i]);
            // Runtime symmetry breaking: orient v < u.
            if u <= v {
                continue;
            }
            let un = sorted.neighbor_slice(u);
            // Merge-intersect the tails of both sorted lists (w > u).
            let (mut p, mut q) = (i + 1, 0usize);
            while p < vn.len() && q < un.len() {
                perfmon::instr(2);
                perfmon::touch_ref(&vn[p]);
                perfmon::touch_ref(&un[q]);
                if un[q] <= u {
                    q += 1;
                    continue;
                }
                match vn[p].cmp(&un[q]) {
                    std::cmp::Ordering::Less => p += 1,
                    std::cmp::Ordering::Greater => q += 1,
                    std::cmp::Ordering::Equal => {
                        count.add(1);
                        p += 1;
                        q += 1;
                    }
                }
            }
        }
    });
    count.reduce()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::builder::GraphBuilder;
    use graph::transform::{sort_by_degree, symmetrize};

    fn sym(edges: &[(u32, u32)], n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for &(s, d) in edges {
            b.push_edge(s, d, 1);
        }
        symmetrize(&b.build())
    }

    #[test]
    fn one_triangle() {
        let g = sym(&[(0, 1), (1, 2), (0, 2)], 3);
        assert_eq!(tc(&g), 1);
    }

    #[test]
    fn k4_has_four_triangles() {
        let g = sym(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)], 4);
        assert_eq!(tc(&g), 4);
    }

    #[test]
    fn cycle_has_none() {
        let g = sym(&[(0, 1), (1, 2), (2, 3), (3, 0)], 4);
        assert_eq!(tc(&g), 0);
    }

    #[test]
    fn sorting_preserves_count() {
        let g = sym(&[(0, 1), (1, 2), (0, 2), (2, 3), (3, 0)], 4);
        let (sorted, _) = sort_by_degree(&g);
        assert_eq!(tc(&g), tc(&sorted));
    }

    #[test]
    fn matches_lagraph_on_study_shapes() {
        for seed in 0..2 {
            let g = symmetrize(&graph::gen::web_crawl(3, 40, seed));
            let (sorted, _) = sort_by_degree(&g);
            let ls = tc(&sorted);
            let gb = lagraph::tc::tc_sandia_dot(&g, graphblas::GaloisRuntime).unwrap();
            let ll = lagraph::tc::tc_listing(&sorted, graphblas::GaloisRuntime).unwrap();
            assert_eq!(ls, gb.triangles, "seed {seed}");
            assert_eq!(ls, ll.triangles, "seed {seed}");
        }
    }

    #[test]
    fn dense_community_graph_counts_match() {
        let g = symmetrize(&graph::gen::community(100, 10, 3).into_unweighted());
        let (sorted, _) = sort_by_degree(&g);
        let gb = lagraph::tc::tc_sandia_dot(&g, graphblas::GaloisRuntime).unwrap();
        assert_eq!(tc(&sorted), gb.triangles);
    }
}
