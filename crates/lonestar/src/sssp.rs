//! Asynchronous delta-stepping SSSP on the OBIM work-list (`sssp-ls`).
//!
//! There is a single priority work-list and **no rounds**: a relaxation
//! that improves a distance immediately schedules the neighbor, and other
//! threads see the new distance at once (Gauss-Seidel). This is the
//! execution model §II-D of the paper says matrix APIs cannot express,
//! worth >100x on high-diameter road networks (Figure 3(d)).
//!
//! Edge tiling (`ls` vs `ls-notile`): the edge list of a high-degree
//! vertex is split into fixed-size tiles pushed as separate work items,
//! so several threads can relax one hub's edges concurrently.

use galois_rt::reduce::atomic_min;
use graph::{CsrGraph, NodeId};
use std::sync::atomic::{AtomicU64, Ordering};

/// Edges per tile when edge tiling is enabled (Lonestar's default grain).
pub const EDGE_TILE_SIZE: usize = 512;

/// Result of the asynchronous delta-stepping run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SsspResult {
    /// Per-vertex distance (`u64::MAX` = unreachable).
    pub dist: Vec<u64>,
    /// Work items processed (vertices + tiles + stale pops).
    pub work_items: u64,
}

/// A unit of work: a vertex to relax, or one tile of a hub's edge list.
#[derive(Debug, Clone, Copy)]
struct Item {
    node: NodeId,
    /// Distance of `node` when this item was created (staleness check).
    dist: u64,
    /// Edge sub-range for tiled items; `None` relaxes all edges.
    tile: Option<(u32, u32)>,
}

/// Runs asynchronous delta-stepping from `src` with bucket width `delta`.
///
/// `tiling` enables edge tiling (the paper's `ls`); disabling it gives
/// `ls-notile`.
///
/// # Panics
///
/// Panics if `delta == 0`.
pub fn sssp(g: &CsrGraph, src: NodeId, delta: u64, tiling: bool) -> SsspResult {
    assert!(delta > 0, "delta must be positive");
    let n = g.num_nodes();
    let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
    dist[src as usize].store(0, Ordering::Relaxed);
    let work = galois_rt::ReduceSum::new();

    galois_rt::for_each_ordered(
        [Item {
            node: src,
            dist: 0,
            tile: None,
        }],
        |item| item.dist / delta,
        |item, ctx| {
            work.add(1);
            perfmon::instr(1);
            perfmon::touch_ref(&dist[item.node as usize]);
            let cur = dist[item.node as usize].load(Ordering::Relaxed);
            if item.dist > cur {
                // Stale: a shorter path was found since this was pushed.
                return;
            }
            let full = g.edge_range(item.node);
            let range = match item.tile {
                Some((s, e)) => s as usize..e as usize,
                None => {
                    if tiling && full.len() > EDGE_TILE_SIZE {
                        // Split the hub's edges into tiles at the same
                        // priority so other threads share the load.
                        let mut s = full.start;
                        while s < full.end {
                            let e = (s + EDGE_TILE_SIZE).min(full.end);
                            ctx.push(
                                Item {
                                    node: item.node,
                                    dist: item.dist,
                                    tile: Some((s as u32, e as u32)),
                                },
                                item.dist / delta,
                            );
                            s = e;
                        }
                        return;
                    }
                    full
                }
            };
            for e in range {
                let u = g.edge_dst(e);
                let w = g.edge_weight(e);
                perfmon::instr(3);
                perfmon::touch_ref(&g.dests()[e]);
                perfmon::touch_ref(&dist[u as usize]);
                let nd = cur.saturating_add(u64::from(w));
                if atomic_min(&dist[u as usize], nd) {
                    ctx.push(
                        Item {
                            node: u,
                            dist: nd,
                            tile: None,
                        },
                        nd / delta,
                    );
                }
            }
        },
    );

    SsspResult {
        dist: dist.into_iter().map(AtomicU64::into_inner).collect(),
        work_items: work.reduce(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::builder::from_weighted_edges;

    fn dijkstra(g: &CsrGraph, src: NodeId) -> Vec<u64> {
        let n = g.num_nodes();
        let mut dist = vec![u64::MAX; n];
        dist[src as usize] = 0;
        let mut heap = std::collections::BinaryHeap::new();
        heap.push(std::cmp::Reverse((0u64, src)));
        while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
            if d > dist[v as usize] {
                continue;
            }
            for (u, w) in g.neighbors_weighted(v) {
                let nd = d + u64::from(w);
                if nd < dist[u as usize] {
                    dist[u as usize] = nd;
                    heap.push(std::cmp::Reverse((nd, u)));
                }
            }
        }
        dist
    }

    #[test]
    fn weighted_diamond() {
        let g = from_weighted_edges(4, [(0, 1, 1), (0, 2, 4), (1, 2, 1), (2, 3, 1), (1, 3, 9)]);
        let r = sssp(&g, 0, 4, true);
        assert_eq!(r.dist, vec![0, 1, 2, 3]);
    }

    #[test]
    fn matches_dijkstra_on_random_graphs() {
        for seed in 0..3 {
            let g = graph::gen::erdos_renyi(300, 1500, seed).with_random_weights(100, seed);
            for tiling in [false, true] {
                let r = sssp(&g, 0, 32, tiling);
                assert_eq!(r.dist, dijkstra(&g, 0), "seed {seed}, tiling {tiling}");
            }
        }
    }

    #[test]
    fn matches_lagraph_delta_stepping() {
        let g = graph::gen::grid_road(15, 10, 7);
        let ls = sssp(&g, 0, 1 << 13, true);
        let gb =
            lagraph::sssp::sssp_delta_stepping(&g, 0, 1 << 13, graphblas::GaloisRuntime).unwrap();
        assert_eq!(ls.dist, gb.dist);
    }

    #[test]
    fn tiling_splits_hub_edges() {
        // A star with a hub of degree > EDGE_TILE_SIZE.
        let n = EDGE_TILE_SIZE * 2 + 1;
        let edges: Vec<(u32, u32, u32)> =
            (1..n as u32).map(|i| (0, i, i % 97 + 1)).collect();
        let g = from_weighted_edges(n, edges);
        let tiled = sssp(&g, 0, 1024, true);
        let plain = sssp(&g, 0, 1024, false);
        assert_eq!(tiled.dist, plain.dist);
        assert!(
            tiled.work_items > plain.work_items,
            "tiling creates extra (tile) items: {} vs {}",
            tiled.work_items,
            plain.work_items
        );
    }

    #[test]
    fn unreachable_stays_max() {
        let g = from_weighted_edges(3, [(0, 1, 2)]);
        assert_eq!(sssp(&g, 0, 8, true).dist, vec![0, 2, u64::MAX]);
    }

    #[test]
    #[should_panic(expected = "delta must be positive")]
    fn rejects_zero_delta() {
        let g = from_weighted_edges(2, [(0, 1, 1)]);
        let _ = sssp(&g, 0, 0, true);
    }
}
