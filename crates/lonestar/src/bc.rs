//! Betweenness centrality (Brandes) with the graph API.
//!
//! The paper's introduction motivates graph analytics with betweenness
//! centrality; this is the Lonestar-style implementation: per source, a
//! level-synchronous forward sweep counts shortest paths with one fused
//! loop per round (path-count accumulation and next-frontier construction
//! together), and the backward sweep accumulates dependencies level by
//! level — again one fused loop per level, with scalars in registers
//! where the matrix API materializes whole vectors.

use galois_rt::reduce::atomic_add_f64;
use galois_rt::InsertBag;
use graph::{CsrGraph, NodeId};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

const UNSET: u32 = u32::MAX;

/// Brandes betweenness centrality from `sources` over unweighted shortest
/// paths (no normalization, endpoints excluded — matching the serial
/// reference).
pub fn betweenness(g: &CsrGraph, sources: &[NodeId]) -> Vec<f64> {
    let n = g.num_nodes();
    let centrality: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0f64.to_bits())).collect();

    for &s in sources {
        let level: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNSET)).collect();
        let sigma: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0f64.to_bits())).collect();
        level[s as usize].store(0, Ordering::Relaxed);
        sigma[s as usize].store(1f64.to_bits(), Ordering::Relaxed);

        // Forward phase: level-synchronous bfs keeping each frontier for
        // the backward phase.
        let mut frontiers: Vec<Vec<NodeId>> = vec![vec![s]];
        let mut depth = 0u32;
        loop {
            let curr = frontiers.last().expect("at least the source frontier");
            if curr.is_empty() {
                frontiers.pop();
                break;
            }
            let next = InsertBag::new();
            galois_rt::do_all(0..curr.len(), |p| {
                let v = curr[p];
                let sv = f64::from_bits(sigma[v as usize].load(Ordering::Relaxed));
                for e in g.edge_range(v) {
                    let u = g.edge_dst(e) as usize;
                    perfmon::instr(3);
                    perfmon::touch_ref(&level[u]);
                    // Discover and count paths in the same fused loop.
                    if level[u].load(Ordering::Relaxed) == UNSET
                        && level[u]
                            .compare_exchange(
                                UNSET,
                                depth + 1,
                                Ordering::Relaxed,
                                Ordering::Relaxed,
                            )
                            .is_ok()
                    {
                        next.push(u as NodeId);
                    }
                    if level[u].load(Ordering::Relaxed) == depth + 1 {
                        atomic_add_f64(&sigma[u], sv);
                    }
                }
            });
            let mut next = next;
            let mut frontier = Vec::new();
            next.drain_into(&mut frontier);
            frontiers.push(frontier);
            depth += 1;
        }

        // Backward phase: dependency accumulation, deepest level first.
        let delta: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0f64.to_bits())).collect();
        for (d, frontier) in frontiers.iter().enumerate().rev() {
            let d = d as u32;
            galois_rt::do_all(0..frontier.len(), |p| {
                let v = frontier[p];
                let sv = f64::from_bits(sigma[v as usize].load(Ordering::Relaxed));
                let mut acc = 0.0;
                for e in g.edge_range(v) {
                    let u = g.edge_dst(e) as usize;
                    perfmon::instr(3);
                    perfmon::touch_ref(&level[u]);
                    if level[u].load(Ordering::Relaxed) == d + 1 {
                        let su = f64::from_bits(sigma[u].load(Ordering::Relaxed));
                        let du = f64::from_bits(delta[u].load(Ordering::Relaxed));
                        acc += sv / su * (1.0 + du);
                    }
                }
                if acc != 0.0 {
                    atomic_add_f64(&delta[v as usize], acc);
                    if v != s {
                        atomic_add_f64(&centrality[v as usize], acc);
                    }
                }
            });
        }
    }

    centrality
        .into_iter()
        .map(|c| f64::from_bits(c.into_inner()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::builder::from_edges;
    use graph::transform::symmetrize;

    fn close(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-9)
    }

    #[test]
    fn path_center_dominates() {
        let g = symmetrize(&from_edges(3, [(0, 1), (1, 2)]));
        let all: Vec<u32> = (0..3).collect();
        assert!(close(&betweenness(&g, &all), &[0.0, 2.0, 0.0]));
    }

    #[test]
    fn diamond_splits_dependency() {
        let g = from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert!(close(&betweenness(&g, &[0]), &[0.0, 0.5, 0.5, 0.0]));
    }

    #[test]
    fn star_hub_carries_everything() {
        // hub 0 connected to 4 leaves, undirected: 3 other endpoints per
        // source pass through the hub.
        let g = symmetrize(&from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]));
        let all: Vec<u32> = (0..5).collect();
        let bc = betweenness(&g, &all);
        assert!(bc[0] > 10.0, "hub centrality {}", bc[0]);
        assert!(bc[1..].iter().all(|&x| x.abs() < 1e-9));
    }
}
