//! Incremental recompute on the graph API: worklist re-push of dirty
//! vertices over the delta graph's merged view.
//!
//! The graph-API counterpart of `lagraph::incremental`, and the study's
//! API contrast in miniature: these routines traverse the
//! [`DeltaGraph`]'s merged-view iterator **directly** — no
//! materialization, no matrix rebuild — so the graph API's absorption
//! cost per update batch is just the repair work itself, while the
//! matrix API must rebuild its `Matrix` from the materialized merged
//! graph first.
//!
//! * [`bfs_repair`] — CAS-min relaxation from the dirty vertices
//!   (levels only decrease under inserts, so the unique fixed point is
//!   the from-scratch answer; the CAS order cannot change it).
//! * [`cc_repair`] / [`cc_scratch`] — union-repair on inserts with
//!   union-by-minimum-root (labels stay minimum vertex ids), and the
//!   union-everything fallback for delete batches.
//! * [`pagerank_delta`] — residual re-seeding: scatter rounds over the
//!   worklist of vertices with non-zero residual, warm-started from the
//!   stale ranks. Scatter order is fixed (ascending vertex id, serial)
//!   so the f64 sums are bit-reproducible across thread counts.
//!
//! Like the matrix side, delete batches are handled by the caller
//! falling back to a cold start (`study_core::delta` owns the policy).

use galois_rt::InsertBag;
use graph::delta::DeltaGraph;
use graph::NodeId;
use perfmon::trace::{self, DeltaKind, DeltaSpan, Event};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Instant;

use crate::bfs::DIST_INFINITY;
use crate::pagerank::DAMPING;

/// Residual tolerance of [`pagerank_delta`] (same contract as
/// `lagraph::incremental::PR_EPS`: remaining per-entry error is at most
/// `eps * d / (1 - d)`, far below the study's 1e-9 comparison band).
pub const PR_EPS: f64 = 1e-12;

/// Safety cap on residual rounds.
pub const PR_MAX_ROUNDS: u32 = 10_000;

/// Records the repair span every incremental routine emits.
fn record_repair(frontier: u64, start: Instant) {
    trace::record(Event::Delta(DeltaSpan {
        seq: 0,
        kind: DeltaKind::Repair,
        delta_nnz: 0,
        layers: 0,
        touched: 0,
        repair_frontier: frontier,
        elapsed_ns: start.elapsed().as_nanos() as u64,
    }));
}

/// Lowers `slot` to `cand` if it improves it (lock-free CAS-min).
fn relax_min(slot: &AtomicU32, cand: u32) -> bool {
    let mut cur = slot.load(Ordering::Relaxed);
    while cand < cur {
        match slot.compare_exchange_weak(cur, cand, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(now) => cur = now,
        }
    }
    false
}

/// Repairs bfs levels (1-based, 0 = unreached) after edge inserts,
/// re-pushing every improved vertex onto the worklist until the
/// min-relaxation fixed point. Same `old_level`/`dirty` contract as
/// `lagraph::incremental::bfs_repair`; a full recompute is the
/// degenerate repair from `&[]` with `dirty = [(src, 1)]`.
pub fn bfs_repair(delta: &DeltaGraph, old_level: &[u32], dirty: &[(NodeId, u32)]) -> Vec<u32> {
    let start = Instant::now();
    let n = delta.num_nodes();
    let lvl: Vec<AtomicU32> = (0..n)
        .map(|v| {
            let l = old_level.get(v).copied().unwrap_or(0);
            AtomicU32::new(if l == 0 { DIST_INFINITY } else { l })
        })
        .collect();

    let mut curr: Vec<NodeId> = Vec::new();
    for &(v, l) in dirty {
        if relax_min(&lvl[v as usize], l) {
            curr.push(v);
        }
    }
    let seeded = curr.len() as u64;

    while !curr.is_empty() {
        let next = InsertBag::new();
        galois_rt::do_all(0..curr.len(), |p| {
            let u = curr[p];
            let cand = lvl[u as usize].load(Ordering::Relaxed).saturating_add(1);
            for (v, _) in delta.neighbors(u) {
                perfmon::instr(2);
                perfmon::touch_ref(&lvl[v as usize]);
                if relax_min(&lvl[v as usize], cand) {
                    next.push(v);
                }
            }
        });
        let mut next = next;
        next.drain_into(&mut curr);
    }

    let out = lvl
        .into_iter()
        .map(|l| {
            let l = l.into_inner();
            if l == DIST_INFINITY {
                0
            } else {
                l
            }
        })
        .collect();
    record_repair(seeded, start);
    out
}

fn find(parent: &mut [u32], v: u32) -> u32 {
    let mut v = v;
    // Path halving, as in Afforest's compress.
    while parent[v as usize] != v {
        let gp = parent[parent[v as usize] as usize];
        parent[v as usize] = gp;
        v = gp;
    }
    v
}

/// Union-repair of component labels after insert-only updates: link the
/// endpoints of every inserted edge into the old label forest (union by
/// minimum root, so labels stay minimum vertex ids), then normalize.
///
/// `old_labels` may be shorter than `n` when updates grew the vertex
/// set; new vertices start as their own component.
pub fn cc_repair(old_labels: &[u32], inserts: &[(NodeId, NodeId)], n: usize) -> Vec<u32> {
    let start = Instant::now();
    let mut parent: Vec<u32> = (0..n as u32)
        .map(|v| old_labels.get(v as usize).copied().unwrap_or(v))
        .collect();
    for &(u, v) in inserts {
        let ru = find(&mut parent, u);
        let rv = find(&mut parent, v);
        if ru != rv {
            let (lo, hi) = if ru < rv { (ru, rv) } else { (rv, ru) };
            parent[hi as usize] = lo;
        }
    }
    for v in 0..n as u32 {
        find(&mut parent, v);
    }
    let out: Vec<u32> = (0..n as u32).map(|v| parent[v as usize]).collect();
    record_repair(inserts.len() as u64, start);
    out
}

/// Full component recompute over the merged view (the fallback when a
/// batch deleted edges): union every merged edge of the — symmetric —
/// delta graph, no materialization. Labels are minimum vertex ids,
/// matching [`cc_repair`] and `lagraph::cc`.
pub fn cc_scratch(delta: &DeltaGraph) -> Vec<u32> {
    let start = Instant::now();
    let n = delta.num_nodes();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    for u in 0..n as u32 {
        for (v, _) in delta.neighbors(u) {
            let ru = find(&mut parent, u);
            let rv = find(&mut parent, v);
            if ru != rv {
                let (lo, hi) = if ru < rv { (ru, rv) } else { (rv, ru) };
                parent[hi as usize] = lo;
            }
        }
    }
    for v in 0..n as u32 {
        find(&mut parent, v);
    }
    let out: Vec<u32> = (0..n as u32).map(|v| parent[v as usize]).collect();
    record_repair(n as u64, start);
    out
}

/// Pagerank by residual re-seeding over the merged view: the worklist
/// holds every vertex with a non-zero residual; each round folds the
/// residuals into the ranks and scatters `d · r(u) / deg(u)` along the
/// merged out-edges. `warm` re-seeds from stale ranks (padded with 0);
/// `None` is a cold start. Converges to the same [`PR_EPS`] fixed point
/// as `lagraph::incremental::pagerank_converging`.
///
/// Returns the converged ranks and the number of residual rounds.
pub fn pagerank_delta(delta: &DeltaGraph, warm: Option<&[f64]>) -> (Vec<f64>, u32) {
    let start = Instant::now();
    let n = delta.num_nodes();
    let base = (1.0 - DAMPING) / n as f64;
    let mut rank: Vec<f64> = vec![0.0; n];
    if let Some(old) = warm {
        rank[..old.len().min(n)].copy_from_slice(&old[..old.len().min(n)]);
    }

    // One full residual evaluation: r = base + d·S·rank - rank.
    let mut r: Vec<f64> = vec![base; n];
    for u in 0..n as u32 {
        let x = rank[u as usize];
        let deg = delta.out_degree(u);
        if x != 0.0 && deg > 0 {
            let c = DAMPING * x / deg as f64;
            for (v, _) in delta.neighbors(u) {
                perfmon::instr(2);
                r[v as usize] += c;
            }
        }
    }
    for v in 0..n {
        r[v] -= rank[v];
    }
    let frontier = r.iter().filter(|x| x.abs() > PR_EPS).count() as u64;

    let mut rounds = 0u32;
    // Scatter order is fixed (ascending vertex id, serial), so the f64
    // sums are bit-reproducible regardless of the ambient thread count.
    while rounds < PR_MAX_ROUNDS {
        let worklist: Vec<u32> = (0..n as u32).filter(|&v| r[v as usize] != 0.0).collect();
        if !worklist
            .iter()
            .any(|&v| r[v as usize].abs() > PR_EPS)
        {
            break;
        }
        rounds += 1;
        let mut next = vec![0.0f64; n];
        for &u in &worklist {
            let ru = r[u as usize];
            rank[u as usize] += ru;
            let deg = delta.out_degree(u);
            if deg > 0 {
                let c = DAMPING * ru / deg as f64;
                for (v, _) in delta.neighbors(u) {
                    perfmon::instr(2);
                    next[v as usize] += c;
                }
            }
        }
        r = next;
    }

    record_repair(frontier, start);
    (rank, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::builder::from_edges;
    use graph::transform::symmetrize;
    use graph::{DeltaGraph, EdgeBatch};

    #[test]
    fn bfs_repair_from_scratch_equals_bfs() {
        let g = from_edges(6, [(0, 1), (1, 2), (2, 3), (0, 4), (4, 3)]);
        let full = crate::bfs::bfs(&g, 0).level;
        let d = DeltaGraph::with_threshold(g, 0);
        assert_eq!(bfs_repair(&d, &[], &[(0, 1)]), full);
    }

    #[test]
    fn bfs_repair_absorbs_an_insert_without_materializing() {
        let g0 = from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let old = crate::bfs::bfs(&g0, 0).level;
        let mut d = DeltaGraph::with_threshold(g0, 0);
        d.apply(&EdgeBatch::new().insert(0, 3)).unwrap();
        let repaired = bfs_repair(&d, &old, &[(3, old[0] + 1)]);
        let full = crate::bfs::bfs(&d.materialize(), 0).level;
        assert_eq!(repaired, full);
        assert_eq!(repaired[3], 2);
    }

    #[test]
    fn union_repair_matches_afforest_labels() {
        let g0 = symmetrize(&from_edges(6, [(0, 1), (2, 3), (4, 5)]));
        let old = crate::cc::afforest(&g0, 2).component;
        let g1 = symmetrize(&from_edges(6, [(0, 1), (2, 3), (4, 5), (3, 4)]));
        let repaired = cc_repair(&old, &[(3, 4), (4, 3)], 6);
        assert_eq!(repaired, crate::cc::afforest(&g1, 2).component);
        assert_eq!(repaired, vec![0, 0, 2, 2, 2, 2]);
    }

    #[test]
    fn cc_scratch_over_the_merged_view_matches_afforest() {
        let g = symmetrize(&from_edges(8, [(0, 1), (1, 2), (4, 5), (6, 7)]));
        let mut d = DeltaGraph::with_threshold(g, 0);
        d.apply(&EdgeBatch::new().insert(2, 4).insert(4, 2).delete(6, 7).delete(7, 6))
            .unwrap();
        let labels = cc_scratch(&d);
        assert_eq!(labels, crate::cc::afforest(&d.materialize(), 2).component);
        assert_eq!(labels, vec![0, 0, 0, 3, 0, 0, 6, 7]);
    }

    #[test]
    fn pagerank_fixed_point_is_start_independent() {
        let g = graph::gen::erdos_renyi(150, 900, 4);
        let d = DeltaGraph::with_threshold(g, 0);
        let (cold, cold_rounds) = pagerank_delta(&d, None);
        let garbage: Vec<f64> = (0..d.num_nodes()).map(|v| v as f64 * 1e-3).collect();
        let (warm, _) = pagerank_delta(&d, Some(&garbage));
        for (a, b) in cold.iter().zip(&warm) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        let (again, again_rounds) = pagerank_delta(&d, None);
        assert_eq!(cold, again, "serial scatter must be bit-reproducible");
        assert_eq!(cold_rounds, again_rounds);
    }
}
