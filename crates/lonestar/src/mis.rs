//! Maximal independent set with an asynchronous work-list (extension
//! workload).
//!
//! Each vertex decides the moment its fate is known: *in* once every
//! higher-priority neighbor is out, *out* once any neighbor is in.
//! Decisions propagate through a single work-list with no rounds — the
//! same asynchronous-execution contrast to Luby's bulk rounds
//! (`lagraph::mis`) that the paper draws for sssp and cc.

use graph::{CsrGraph, NodeId};
use std::sync::atomic::{AtomicU8, Ordering};

const UNDECIDED: u8 = 0;
const IN: u8 = 1;
const OUT: u8 = 2;

/// Result of the graph-API MIS computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MisResult {
    /// Whether each vertex is in the independent set.
    pub in_set: Vec<bool>,
    /// Work items processed (decision attempts).
    pub work_items: u64,
}

/// Deterministic unique priority shared with the Luby implementation so
/// the two algorithms resolve ties identically.
fn priority(v: NodeId, seed: u64) -> u64 {
    let mut z = u64::from(v)
        .wrapping_add(seed)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z & 0xFFFF_FFFF_0000_0000) | u64::from(v)
}

/// Computes a maximal independent set of a **symmetric, loop-free** graph
/// by asynchronous priority-greedy decisions.
///
/// With the same `seed`, the resulting set equals the greedy MIS in
/// priority order (a deterministic set, regardless of scheduling).
pub fn mis(g: &CsrGraph, seed: u64) -> MisResult {
    let n = g.num_nodes();
    let status: Vec<AtomicU8> = (0..n).map(|_| AtomicU8::new(UNDECIDED)).collect();
    let work = galois_rt::ReduceSum::new();

    galois_rt::for_each(0..n as NodeId, |v, ctx| {
        work.add(1);
        if status[v as usize].load(Ordering::Acquire) != UNDECIDED {
            return;
        }
        let pv = priority(v, seed);
        let mut all_higher_out = true;
        for u in g.neighbors(v) {
            perfmon::instr(2);
            perfmon::touch_ref(&status[u as usize]);
            match status[u as usize].load(Ordering::Acquire) {
                IN => {
                    // A neighbor joined: v is out; lower-priority
                    // neighbors may now be unblocked.
                    status[v as usize].store(OUT, Ordering::Release);
                    for w in g.neighbors(v) {
                        if status[w as usize].load(Ordering::Acquire) == UNDECIDED {
                            ctx.push(w);
                        }
                    }
                    return;
                }
                OUT => {}
                _ => {
                    if priority(u, seed) > pv {
                        all_higher_out = false;
                    }
                }
            }
        }
        if all_higher_out {
            // Every higher-priority neighbor is out: v joins.
            status[v as usize].store(IN, Ordering::Release);
            for u in g.neighbors(v) {
                ctx.push(u);
            }
        }
        // Otherwise: an undecided higher-priority neighbor exists; its
        // eventual decision will re-schedule v.
    });

    MisResult {
        in_set: status
            .into_iter()
            .map(|s| s.into_inner() == IN)
            .collect(),
        work_items: work.reduce(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::builder::GraphBuilder;
    use graph::transform::symmetrize;

    fn sym(edges: &[(u32, u32)], n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for &(s, d) in edges {
            b.push_edge(s, d, 1);
        }
        symmetrize(&b.build())
    }

    fn assert_maximal_independent(g: &CsrGraph, in_set: &[bool]) {
        for v in 0..g.num_nodes() as u32 {
            if in_set[v as usize] {
                assert!(g.neighbors(v).all(|u| !in_set[u as usize]));
            } else {
                assert!(g.neighbors(v).any(|u| in_set[u as usize]));
            }
        }
    }

    #[test]
    fn path_alternates() {
        let g = sym(&[(0, 1), (1, 2), (2, 3)], 4);
        let r = mis(&g, 1);
        assert_maximal_independent(&g, &r.in_set);
    }

    #[test]
    fn property_holds_on_random_graphs() {
        for seed in 0..4 {
            let g = symmetrize(&graph::gen::erdos_renyi(300, 900, seed));
            let r = mis(&g, seed);
            assert_maximal_independent(&g, &r.in_set);
        }
    }

    #[test]
    fn matches_lagraph_greedy_set_exactly() {
        // Both implementations realize the same priority-greedy MIS.
        for seed in 0..3 {
            let g = symmetrize(&graph::gen::web_crawl(3, 30, seed));
            let ls = mis(&g, seed);
            let gb = lagraph::mis::mis(&g, seed, graphblas::GaloisRuntime).unwrap();
            assert_eq!(ls.in_set, gb.in_set, "seed {seed}");
        }
    }

    #[test]
    fn isolated_vertices_join() {
        let g = sym(&[(1, 2)], 4);
        let r = mis(&g, 9);
        assert!(r.in_set[0] && r.in_set[3]);
    }
}
