#![warn(missing_docs)]

//! # lonestar — graph-based algorithms on the Galois runtime
//!
//! Rust ports of the Lonestar benchmark programs evaluated in *A Study of
//! APIs for Graph Analytics Workloads* (IISWC 2020). These use the
//! graph-based API — [`graph::CsrGraph`] plus the [`galois_rt`] parallel
//! constructs (`do_all`, `for_each`, OBIM) — and exercise exactly the four
//! capabilities the paper shows a matrix API cannot express:
//!
//! * **fused composite operators** — bfs marks distances and builds the
//!   next frontier in one loop (Algorithm 1);
//! * **no forced materialization** — tc bumps a counter instead of
//!   building an intermediate matrix;
//! * **fine-grained vertex operations** — cc uses Afforest's sampled
//!   union-find hooks;
//! * **asynchronous execution** — sssp runs delta-stepping on a single
//!   priority work-list with no rounds, and cc-sv short-circuits parent
//!   chains arbitrarily far.
//!
//! Variants match the paper's Table II selections and the Figure 3
//! differential analysis:
//!
//! | problem | function | paper variant |
//! |---|---|---|
//! | bfs | [`bfs::bfs`] | round-based data-driven, fused loop (`ls`) |
//! | cc | [`cc::afforest`] | Afforest (`cc-ls`) |
//! | cc | [`cc::shiloach_vishkin`] | unbounded pointer jumping (`cc-ls-sv`) |
//! | ktruss | [`ktruss::ktruss`] | immediate edge removal (Gauss-Seidel) |
//! | pr | [`pagerank::pagerank`] | residual, array-of-structs (`pr-ls`) |
//! | pr | [`pagerank::pagerank_soa`] | residual, structure-of-arrays (`pr-ls-soa`) |
//! | sssp | [`sssp::sssp`] | async delta-stepping + edge tiling (`ls`) |
//! | sssp | [`sssp::sssp`] with tiling off | `ls-notile` |
//! | tc | [`tc::tc`] | triangle listing on a degree-sorted graph (`ls`) |
//!
//! Extensions beyond the paper's evaluation (documented in DESIGN.md §8):
//! [`bfs::bfs_direction_optimizing`] (Beamer push/pull),
//! [`bfs::bfs_parent`] (parent-tree output), [`bc::betweenness`] (the
//! paper's motivating application), [`kcore::kcore`] (asynchronous
//! work-list peeling), [`mis::mis`] (asynchronous priority-greedy),
//! [`pagerank::ppr`] (fused personalized PageRank) and [`batch`] (the
//! per-query worklist counterpart of `lagraph::batch` — the graph API
//! answers a k-source batch as k independent runs).
//!
//! Like `lagraph`, everything here is agnostic to vertex numbering:
//! the study runner's `STUDY_ORDER` locality tier hands these programs
//! a permuted CSR and translated source and un-permutes the answers
//! afterwards, with no cooperation needed from this crate.

pub mod batch;
pub mod bc;
pub mod bfs;
pub mod cc;
pub mod incremental;
pub mod kcore;
pub mod ktruss;
pub mod mis;
pub mod pagerank;
pub mod sssp;
pub mod tc;
