//! k-core decomposition with the graph API (extension workload).
//!
//! An asynchronous work-list peel: when a vertex's degree drops below
//! `k`, it dies and decrements its neighbors — which may die immediately,
//! in the same pass, on whatever thread observes them. There are no
//! rounds and no per-round full-degree recomputation; contrast with the
//! bulk `lagraph::kcore` whose round count equals the peeling depth.

use graph::{CsrGraph, NodeId};
use std::sync::atomic::{AtomicI64, Ordering};

/// Result of the graph-API k-core computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KcoreResult {
    /// Whether each vertex belongs to the k-core.
    pub in_core: Vec<bool>,
    /// Directed edges remaining in the core.
    pub edges_remaining: usize,
    /// Work items processed (initial + cascaded removals).
    pub work_items: u64,
}

/// Computes the k-core of a **symmetric, loop-free** graph.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn kcore(g: &CsrGraph, k: u32) -> KcoreResult {
    assert!(k > 0, "k-core requires k >= 1");
    let n = g.num_nodes();
    // Degree counters; a vertex is dead once its counter drops below k
    // (set to a large negative to make death idempotent).
    let deg: Vec<AtomicI64> = (0..n as u32)
        .map(|v| AtomicI64::new(g.out_degree(v) as i64))
        .collect();
    let work = galois_rt::ReduceSum::new();

    // Seed: every vertex already below the threshold.
    let seeds: Vec<NodeId> = (0..n as NodeId)
        .filter(|&v| g.out_degree(v) < k as usize)
        .collect();

    galois_rt::for_each(seeds, |v, ctx| {
        work.add(1);
        // Claim death exactly once.
        let prev = deg[v as usize].swap(i64::MIN / 2, Ordering::Relaxed);
        if prev < 0 || prev >= i64::from(k) {
            // Already dead, or resurrected state (cannot happen: degrees
            // only decrease) — either way nothing to do.
            if prev >= i64::from(k) {
                // Undo an erroneous claim (stale push after the vertex
                // regained nothing; degrees never increase, so `prev`
                // below k is guaranteed for genuine pushes — this branch
                // only guards against duplicate seeds).
                deg[v as usize].store(prev, Ordering::Relaxed);
            }
            return;
        }
        for e in g.edge_range(v) {
            let u = g.edge_dst(e) as usize;
            perfmon::instr(2);
            perfmon::touch_ref(&deg[u]);
            let before = deg[u].fetch_sub(1, Ordering::Relaxed);
            // The decrement that crosses the threshold schedules the
            // removal — immediately visible, no rounds.
            if before == i64::from(k) {
                ctx.push(u as NodeId);
            }
        }
    });

    let in_core: Vec<bool> = deg
        .iter()
        .map(|d| d.load(Ordering::Relaxed) >= i64::from(k))
        .collect();
    let edges_remaining = (0..n as NodeId)
        .filter(|&v| in_core[v as usize])
        .map(|v| g.neighbors(v).filter(|&u| in_core[u as usize]).count())
        .sum();
    KcoreResult {
        in_core,
        edges_remaining,
        work_items: work.reduce(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::builder::GraphBuilder;
    use graph::transform::symmetrize;

    fn sym(edges: &[(u32, u32)], n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for &(s, d) in edges {
            b.push_edge(s, d, 1);
        }
        symmetrize(&b.build())
    }

    #[test]
    fn triangle_with_tail() {
        let g = sym(&[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)], 5);
        let r = kcore(&g, 2);
        assert_eq!(r.in_core, vec![true, true, true, false, false]);
        assert_eq!(r.edges_remaining, 6);
    }

    #[test]
    fn cascading_removal_through_a_path() {
        let n = 30;
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = sym(&edges, n as usize);
        let r = kcore(&g, 2);
        assert!(r.in_core.iter().all(|&x| !x));
        assert_eq!(r.work_items, u64::from(n), "every vertex peels exactly once");
    }

    #[test]
    fn matches_lagraph_on_random_graphs() {
        for seed in 0..4 {
            let g = symmetrize(&graph::gen::erdos_renyi(250, 900, seed));
            for k in [2, 3, 4] {
                let ls = kcore(&g, k);
                let gb = lagraph::kcore::kcore(&g, k, graphblas::GaloisRuntime).unwrap();
                assert_eq!(ls.in_core, gb.in_core, "seed {seed} k {k}");
                assert_eq!(ls.edges_remaining, gb.edges_remaining, "seed {seed} k {k}");
            }
        }
    }

    #[test]
    fn clique_survives_exactly_to_its_degree() {
        let g = sym(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)], 4);
        assert!(kcore(&g, 3).in_core.iter().all(|&x| x));
        assert!(kcore(&g, 4).in_core.iter().all(|&x| !x));
    }
}
