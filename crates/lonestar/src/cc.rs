//! Connected components with the graph API: Afforest (`cc-ls`) and
//! asynchronous Shiloach-Vishkin (`cc-ls-sv`).
//!
//! Afforest [Sutton et al., IPDPS 2018] is the paper's prime example of a
//! *fine-grained vertex operation* the matrix API cannot express: it links
//! only a small **sample** of each vertex's edges, detects the emerging
//! giant component by sampling vertex roots, and then finishes only the
//! vertices outside it. Shiloach-Vishkin here performs **unbounded**
//! pointer jumping — each `find` short-circuits the whole parent chain —
//! unlike the fixed bulk jump per round the matrix API allows.

use graph::{CsrGraph, NodeId};
use std::sync::atomic::{AtomicU32, Ordering};

/// Result of a graph-API connected-components run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CcResult {
    /// Per-vertex component label, normalized to the minimum vertex id of
    /// the component (comparable with the LAGraph output).
    pub component: Vec<u32>,
    /// Rounds (Shiloach-Vishkin) or phases (Afforest) executed.
    pub rounds: u32,
}

/// Lock-free union-find hook: links the trees of `u` and `v`, always
/// hooking the higher root under the lower (GAPBS-style `Link`).
fn link(u: NodeId, v: NodeId, parent: &[AtomicU32]) {
    let mut p1 = parent[u as usize].load(Ordering::Relaxed);
    let mut p2 = parent[v as usize].load(Ordering::Relaxed);
    while p1 != p2 {
        perfmon::instr(3);
        let (high, low) = if p1 > p2 { (p1, p2) } else { (p2, p1) };
        perfmon::touch_ref(&parent[high as usize]);
        // Hook only roots: try to swing `high` (if it is still a root).
        if parent[high as usize]
            .compare_exchange(high, low, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            return;
        }
        p1 = parent[parent[high as usize].load(Ordering::Relaxed) as usize]
            .load(Ordering::Relaxed);
        p2 = parent[low as usize].load(Ordering::Relaxed);
    }
}

/// Fully compresses every parent chain (one bulk pass at the end).
fn compress_all(parent: &[AtomicU32]) {
    galois_rt::do_all(0..parent.len(), |v| {
        perfmon::instr(1);
        let mut root = parent[v].load(Ordering::Relaxed);
        perfmon::touch_ref(&parent[v]);
        while parent[root as usize].load(Ordering::Relaxed) != root {
            perfmon::instr(1);
            root = parent[root as usize].load(Ordering::Relaxed);
        }
        parent[v].store(root, Ordering::Relaxed);
    });
}

fn labels(parent: Vec<AtomicU32>) -> Vec<u32> {
    parent.into_iter().map(AtomicU32::into_inner).collect()
}

/// Afforest connected components on a **symmetric** graph.
///
/// `neighbor_rounds` is the number of sampled edges per vertex in the
/// subgraph-sampling phase (2 in the original paper and in Lonestar).
pub fn afforest(g: &CsrGraph, neighbor_rounds: usize) -> CcResult {
    let n = g.num_nodes();
    let parent: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let mut phases = 0u32;

    // Phase 1: link only the first `neighbor_rounds` edges of each vertex
    // — the fine-grained sampling a bulk API cannot express.
    for r in 0..neighbor_rounds {
        phases += 1;
        galois_rt::do_all(0..n, |v| {
            let range = g.edge_range(v as NodeId);
            if let Some(e) = range.clone().nth(r) {
                perfmon::instr(1);
                perfmon::touch_ref(&g.dests()[e]);
                link(v as NodeId, g.edge_dst(e), &parent);
            }
        });
    }
    compress_all(&parent);

    // Phase 2: sample roots to find the (likely) largest component.
    let giant = most_frequent_root(&parent, 1024);

    // Phase 3: finish the remaining edges, skipping the giant component.
    phases += 1;
    galois_rt::do_all(0..n, |v| {
        perfmon::touch_ref(&parent[v]);
        if parent[v].load(Ordering::Relaxed) == giant {
            return;
        }
        for e in g.edge_range(v as NodeId).skip(neighbor_rounds) {
            perfmon::instr(1);
            perfmon::touch_ref(&g.dests()[e]);
            link(v as NodeId, g.edge_dst(e), &parent);
        }
    });
    compress_all(&parent);

    CcResult {
        component: normalize(labels(parent)),
        rounds: phases,
    }
}

/// Deterministically samples `samples` vertices and returns the most
/// frequent root among them.
fn most_frequent_root(parent: &[AtomicU32], samples: usize) -> u32 {
    let n = parent.len();
    if n == 0 {
        return 0;
    }
    let mut counts: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    // Deterministic stride sampling (Lonestar uses a PRNG; determinism
    // helps reproducibility and has the same effect).
    let stride = (n / samples.min(n)).max(1);
    for v in (0..n).step_by(stride) {
        let mut root = parent[v].load(Ordering::Relaxed);
        while parent[root as usize].load(Ordering::Relaxed) != root {
            root = parent[root as usize].load(Ordering::Relaxed);
        }
        *counts.entry(root).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .max_by_key(|&(root, c)| (c, std::cmp::Reverse(root)))
        .map(|(root, _)| root)
        .unwrap_or(0)
}

/// Asynchronous Shiloach-Vishkin (`cc-ls-sv`): rounds of edge hooking with
/// **unbounded** path compression inside each `find`.
pub fn shiloach_vishkin(g: &CsrGraph) -> CcResult {
    let n = g.num_nodes();
    let parent: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let mut rounds = 0u32;
    loop {
        rounds += 1;
        let changed = galois_rt::ReduceLogicalOr::new();
        galois_rt::do_all(0..n, |v| {
            for e in g.edge_range(v as NodeId) {
                let u = g.edge_dst(e);
                perfmon::instr(2);
                perfmon::touch_ref(&g.dests()[e]);
                let rv = find_compress(v as NodeId, &parent);
                let ru = find_compress(u, &parent);
                if rv != ru {
                    link(rv, ru, &parent);
                    changed.update(true);
                }
            }
        });
        if !changed.reduce() {
            break;
        }
    }
    compress_all(&parent);
    CcResult {
        component: normalize(labels(parent)),
        rounds,
    }
}

/// Find with full path compression — the unbounded pointer jumping the
/// matrix API cannot express (each vertex short-circuits independently).
fn find_compress(v: NodeId, parent: &[AtomicU32]) -> u32 {
    let mut root = v;
    loop {
        perfmon::instr(1);
        perfmon::touch_ref(&parent[root as usize]);
        let p = parent[root as usize].load(Ordering::Relaxed);
        if p == root {
            break;
        }
        root = p;
    }
    // Compress the whole chain to the root.
    let mut cur = v;
    while cur != root {
        let next = parent[cur as usize].load(Ordering::Relaxed);
        parent[cur as usize].store(root, Ordering::Relaxed);
        cur = next;
    }
    root
}

/// Relabels components to the minimum vertex id per component so results
/// are comparable across algorithms.
fn normalize(mut labels: Vec<u32>) -> Vec<u32> {
    let mut min_of_root: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    for (v, &root) in labels.iter().enumerate() {
        let entry = min_of_root.entry(root).or_insert(v as u32);
        *entry = (*entry).min(v as u32);
    }
    for l in &mut labels {
        *l = min_of_root[l];
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::builder::GraphBuilder;
    use graph::transform::symmetrize;

    fn sym(edges: &[(u32, u32)], n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for &(s, d) in edges {
            b.push_edge(s, d, 1);
        }
        symmetrize(&b.build())
    }

    #[test]
    fn afforest_finds_two_components() {
        let g = sym(&[(0, 1), (1, 2), (3, 4)], 5);
        let r = afforest(&g, 2);
        assert_eq!(r.component, vec![0, 0, 0, 3, 3]);
    }

    #[test]
    fn shiloach_vishkin_finds_two_components() {
        let g = sym(&[(0, 1), (1, 2), (3, 4)], 5);
        let r = shiloach_vishkin(&g);
        assert_eq!(r.component, vec![0, 0, 0, 3, 3]);
    }

    #[test]
    fn algorithms_agree_on_random_graphs() {
        for seed in 0..3 {
            let g = symmetrize(&graph::gen::erdos_renyi(300, 500, seed));
            let a = afforest(&g, 2);
            let s = shiloach_vishkin(&g);
            assert_eq!(a.component, s.component, "seed {seed}");
        }
    }

    #[test]
    fn agrees_with_lagraph_on_grid() {
        let g = symmetrize(&graph::gen::grid_road(15, 10, 2).into_unweighted());
        let ls = afforest(&g, 2);
        let gb = lagraph::cc::connected_components(&g, graphblas::GaloisRuntime).unwrap();
        assert_eq!(ls.component, gb.component);
    }

    #[test]
    fn isolated_vertices_self_label() {
        let g = sym(&[(1, 2)], 5);
        let r = afforest(&g, 2);
        assert_eq!(r.component, vec![0, 1, 1, 3, 4]);
    }

    #[test]
    fn giant_component_is_skipped_but_correct() {
        // A big clique (giant) plus a separate path.
        let mut edges = Vec::new();
        for i in 0..30u32 {
            for j in (i + 1)..30 {
                edges.push((i, j));
            }
        }
        edges.push((30, 31));
        edges.push((31, 32));
        let g = sym(&edges, 33);
        let r = afforest(&g, 2);
        assert!(r.component[..30].iter().all(|&c| c == 0));
        assert!(r.component[30..].iter().all(|&c| c == 30));
    }
}
