//! Residual PageRank with fused loops: array-of-structs (`pr-ls`) and
//! structure-of-arrays (`pr-ls-soa`).
//!
//! Same mathematics as `lagraph::pagerank` (fixed-iteration power method
//! carried through residuals), but each round is **one** fused loop: the
//! rank update and the residual-by-out-degree scaling happen in a single
//! pass over the vertex data, where the matrix API needs two calls and
//! two traversals of the residual vector (§V-B, pr).
//!
//! The two variants differ only in data layout. Both gather neighbor
//! contributions from a packed double-buffered array; the per-vertex
//! state (`rank`, `residual`, `inv_deg`) lives in **one struct** for
//! `pr-ls` (all three fields on the same cache line) and in **three
//! separate arrays** for `pr-ls-soa` (three lines touched per vertex).
//! That is the locality control the paper notes a matrix API does not
//! expose (Figure 3(a): `ls` beats `ls-soa`).

use galois_rt::substrate::ParSlice;
use graph::CsrGraph;

/// Damping factor used throughout the study.
pub const DAMPING: f64 = 0.85;

/// Per-vertex state of the AoS variant: everything the fused loop writes
/// for a vertex sits on one cache-line stride.
#[derive(Debug, Clone, Copy, Default)]
struct NodeData {
    rank: f64,
    residual: f64,
    inv_deg: f64,
}

fn initial(n: usize) -> f64 {
    (1.0 - DAMPING) / n as f64
}

/// Residual pagerank, array-of-structs layout (`pr-ls`).
///
/// `gt` is the transpose (in-adjacency) of the graph and `out_degree` the
/// original out-degrees; both are preprocessing the study excludes from
/// timing.
///
/// # Panics
///
/// Panics if `out_degree.len() != gt.num_nodes()`.
pub fn pagerank(gt: &CsrGraph, out_degree: &[u32], iters: u32) -> Vec<f64> {
    let n = gt.num_nodes();
    assert_eq!(out_degree.len(), n, "out_degree must cover every vertex");
    let init = initial(n);
    let mut data: Vec<NodeData> = (0..n)
        .map(|v| NodeData {
            rank: init,
            residual: init,
            inv_deg: if out_degree[v] > 0 {
                1.0 / f64::from(out_degree[v])
            } else {
                0.0
            },
        })
        .collect();
    // Packed contribution buffers: contrib[v] = residual(v) / deg(v).
    let mut contrib_cur: Vec<f64> = data.iter().map(|d| d.residual * d.inv_deg).collect();
    let mut contrib_next = vec![0.0f64; n];

    for _ in 0..iters {
        {
            let pd = ParSlice::new(&mut data);
            let pn = ParSlice::new(&mut contrib_next);
            let cur: &[f64] = &contrib_cur;
            galois_rt::do_all(0..n, |v| {
                let mut acc = 0.0;
                for e in gt.edge_range(v as u32) {
                    let u = gt.edge_dst(e) as usize;
                    perfmon::instr(2);
                    perfmon::touch_ref(&cur[u]);
                    acc += cur[u];
                }
                let new_res = DAMPING * acc;
                // SAFETY: one writer per vertex index.
                unsafe {
                    perfmon::instr(3);
                    perfmon::touch(pd.addr_of(v));
                    let node = pd.get_mut(v);
                    // The fused composite operation on one struct: rank
                    // update AND residual scaling, fields co-located.
                    node.rank += new_res;
                    node.residual = new_res;
                    pn.write(v, new_res * node.inv_deg);
                }
            });
        }
        std::mem::swap(&mut contrib_cur, &mut contrib_next);
    }

    data.into_iter().map(|d| d.rank).collect()
}

/// Personalized PageRank seeded at one vertex, the same fused residual
/// loop as [`pagerank`] with the teleport mass `(1-d)` concentrated on
/// `seed` instead of spread uniformly. After `iters` rounds the rank is
/// the truncated series `Σ_{t=0..iters} d^t (Mᵀ)^t b` with
/// `b = (1-d)·e_seed` — the same quantity `lagraph::pagerank::ppr`
/// computes in four bulk passes per round, so the two agree to rounding
/// (the graph API fuses the per-round work into one loop; it does not
/// change the arithmetic order within a vertex's gather).
///
/// # Panics
///
/// Panics if `out_degree.len() != gt.num_nodes()` or `seed` is out of
/// range.
pub fn ppr(gt: &CsrGraph, out_degree: &[u32], seed: u32, iters: u32) -> Vec<f64> {
    let n = gt.num_nodes();
    assert_eq!(out_degree.len(), n, "out_degree must cover every vertex");
    assert!((seed as usize) < n, "seed must be a vertex");
    let mut data: Vec<NodeData> = (0..n)
        .map(|v| NodeData {
            rank: 0.0,
            residual: 0.0,
            inv_deg: if out_degree[v] > 0 {
                1.0 / f64::from(out_degree[v])
            } else {
                0.0
            },
        })
        .collect();
    data[seed as usize].rank = 1.0 - DAMPING;
    data[seed as usize].residual = 1.0 - DAMPING;
    let mut contrib_cur: Vec<f64> = data.iter().map(|d| d.residual * d.inv_deg).collect();
    let mut contrib_next = vec![0.0f64; n];

    for _ in 0..iters {
        {
            let pd = ParSlice::new(&mut data);
            let pn = ParSlice::new(&mut contrib_next);
            let cur: &[f64] = &contrib_cur;
            galois_rt::do_all(0..n, |v| {
                let mut acc = 0.0;
                for e in gt.edge_range(v as u32) {
                    let u = gt.edge_dst(e) as usize;
                    perfmon::instr(2);
                    perfmon::touch_ref(&cur[u]);
                    acc += cur[u];
                }
                let new_res = DAMPING * acc;
                // SAFETY: one writer per vertex index.
                unsafe {
                    perfmon::instr(3);
                    perfmon::touch(pd.addr_of(v));
                    let node = pd.get_mut(v);
                    node.rank += new_res;
                    node.residual = new_res;
                    pn.write(v, new_res * node.inv_deg);
                }
            });
        }
        std::mem::swap(&mut contrib_cur, &mut contrib_next);
    }

    data.into_iter().map(|d| d.rank).collect()
}

/// Residual pagerank, structure-of-arrays layout (`pr-ls-soa`): identical
/// fused loop, but `rank`, `residual` and `inv_deg` live in three
/// separate arrays — three cache lines touched per vertex where the AoS
/// variant touches one.
///
/// # Panics
///
/// Panics if `out_degree.len() != gt.num_nodes()`.
pub fn pagerank_soa(gt: &CsrGraph, out_degree: &[u32], iters: u32) -> Vec<f64> {
    let n = gt.num_nodes();
    assert_eq!(out_degree.len(), n, "out_degree must cover every vertex");
    let init = initial(n);
    let mut rank = vec![init; n];
    let mut residual = vec![init; n];
    let inv_deg: Vec<f64> = (0..n)
        .map(|v| {
            if out_degree[v] > 0 {
                1.0 / f64::from(out_degree[v])
            } else {
                0.0
            }
        })
        .collect();
    let mut contrib_cur: Vec<f64> = (0..n).map(|v| residual[v] * inv_deg[v]).collect();
    let mut contrib_next = vec![0.0f64; n];

    for _ in 0..iters {
        {
            let pr = ParSlice::new(&mut rank);
            let pres = ParSlice::new(&mut residual);
            let pn = ParSlice::new(&mut contrib_next);
            let cur: &[f64] = &contrib_cur;
            let inv: &[f64] = &inv_deg;
            galois_rt::do_all(0..n, |v| {
                let mut acc = 0.0;
                for e in gt.edge_range(v as u32) {
                    let u = gt.edge_dst(e) as usize;
                    perfmon::instr(2);
                    perfmon::touch_ref(&cur[u]);
                    acc += cur[u];
                }
                let new_res = DAMPING * acc;
                // SAFETY: one writer per vertex index.
                unsafe {
                    perfmon::instr(3);
                    perfmon::touch(pr.addr_of(v));
                    perfmon::touch(pres.addr_of(v));
                    perfmon::touch_ref(&inv[v]);
                    *pr.get_mut(v) += new_res;
                    pres.write(v, new_res);
                    pn.write(v, new_res * inv[v]);
                }
            });
        }
        std::mem::swap(&mut contrib_cur, &mut contrib_next);
    }

    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::transform::transpose;

    fn degrees(g: &CsrGraph) -> Vec<u32> {
        (0..g.num_nodes() as u32).map(|v| g.out_degree(v) as u32).collect()
    }

    fn close(a: &[f64], b: &[f64], tol: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= tol)
    }

    #[test]
    fn aos_and_soa_agree_exactly() {
        let g = graph::gen::rmat(8, 8, graph::gen::RmatParams::default(), 2);
        let gt = transpose(&g);
        let deg = degrees(&g);
        let a = pagerank(&gt, &deg, 10);
        let b = pagerank_soa(&gt, &deg, 10);
        assert!(close(&a, &b, 1e-15));
    }

    #[test]
    fn matches_lagraph_values() {
        let g = graph::gen::web_crawl(2, 40, 5);
        let gt = transpose(&g);
        let deg = degrees(&g);
        let ls = pagerank(&gt, &deg, 10);
        let gb = lagraph::pagerank::pagerank(&g, 10, graphblas::GaloisRuntime).unwrap();
        assert!(close(&ls, &gb, 1e-12), "fused and bulk must agree");
        let gb_res =
            lagraph::pagerank::pagerank_residual(&g, 10, graphblas::GaloisRuntime).unwrap();
        assert!(close(&ls, &gb_res, 1e-12));
    }

    #[test]
    fn star_concentrates_rank() {
        let g = graph::builder::from_edges(4, [(1, 0), (2, 0), (3, 0), (0, 1)]);
        let gt = transpose(&g);
        let pr = pagerank(&gt, &degrees(&g), 20);
        assert!(pr[0] > pr[2] && pr[0] > pr[3]);
    }

    #[test]
    fn dangling_vertices_do_not_nan() {
        let g = graph::builder::from_edges(3, [(0, 1), (0, 2)]);
        let gt = transpose(&g);
        let pr = pagerank(&gt, &degrees(&g), 10);
        assert!(pr.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn ppr_matches_lagraph_values() {
        let g = graph::gen::web_crawl(2, 30, 1);
        let gt = transpose(&g);
        let ls = ppr(&gt, &degrees(&g), 5, 10);
        let gb = lagraph::pagerank::ppr(&g, 5, 10, graphblas::GaloisRuntime).unwrap();
        assert!(close(&ls, &gb, 1e-12), "fused and bulk ppr must agree");
    }

    #[test]
    fn ppr_mass_decays_along_a_path() {
        let g = graph::builder::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let gt = transpose(&g);
        let pr = ppr(&gt, &degrees(&g), 0, 10);
        let expect: Vec<f64> = (0..4).map(|i| 0.15 * DAMPING.powi(i)).collect();
        assert!(close(&pr, &expect, 1e-12), "{pr:?}");
    }

    #[test]
    #[should_panic(expected = "seed must be a vertex")]
    fn ppr_rejects_out_of_range_seed() {
        let g = graph::builder::from_edges(3, [(0, 1)]);
        let gt = transpose(&g);
        let _ = ppr(&gt, &degrees(&g), 7, 1);
    }

    #[test]
    #[should_panic(expected = "out_degree must cover")]
    fn rejects_mismatched_degrees() {
        let g = graph::builder::from_edges(3, [(0, 1)]);
        let gt = transpose(&g);
        let _ = pagerank(&gt, &[1, 0], 1);
    }
}
