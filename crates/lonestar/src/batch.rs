//! Batched multi-source queries on the graph API: the worklist
//! counterpart of `lagraph::batch`.
//!
//! The graph API has no frontier object to widen — each query owns its
//! own worklist — so a k-source batch is k independent runs back to
//! back. That asymmetry is the point of the batched study dimension: the
//! matrix API amortizes k queries into one mxm-shaped product per round,
//! while the graph API repeats its (already fused, asynchronous)
//! single-query engine k times. Results are per-query and a panic in one
//! query is isolated by the study-runner cell, not here.

use crate::bfs::{self, BfsResult};
use crate::pagerank;
use crate::sssp::{self, SsspResult};
use graph::{CsrGraph, NodeId};

/// k BFS queries, one [`bfs::bfs`] worklist run per source.
pub fn batched_bfs(g: &CsrGraph, sources: &[NodeId]) -> Vec<BfsResult> {
    sources.iter().map(|&src| bfs::bfs(g, src)).collect()
}

/// k personalized-PageRank queries, one fused [`pagerank::ppr`] run per
/// seed. `gt` is the in-adjacency and `out_degree` the original
/// out-degrees, shared preprocessing across the batch.
pub fn batched_ppr(
    gt: &CsrGraph,
    out_degree: &[u32],
    seeds: &[NodeId],
    iters: u32,
) -> Vec<Vec<f64>> {
    seeds
        .iter()
        .map(|&seed| pagerank::ppr(gt, out_degree, seed, iters))
        .collect()
}

/// k SSSP queries, one asynchronous [`sssp::sssp`] delta-stepping run
/// per source.
pub fn batched_sssp(
    g: &CsrGraph,
    sources: &[NodeId],
    delta: u64,
    tiling: bool,
) -> Vec<SsspResult> {
    sources
        .iter()
        .map(|&src| sssp::sssp(g, src, delta, tiling))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::transform::transpose;

    #[test]
    fn batched_runs_equal_individual_runs() {
        let g = graph::gen::erdos_renyi(80, 320, 3).with_random_weights(20, 3);
        let sources = [0u32, 11, 42];
        let b = batched_bfs(&g, &sources);
        let s = batched_sssp(&g, &sources, 8, true);
        for (j, &src) in sources.iter().enumerate() {
            assert_eq!(b[j], bfs::bfs(&g, src), "bfs lane {j}");
            assert_eq!(s[j].dist, sssp::sssp(&g, src, 8, true).dist, "sssp lane {j}");
        }
    }

    #[test]
    fn batched_ppr_lanes_are_independent() {
        let g = graph::gen::web_crawl(2, 30, 1);
        let gt = transpose(&g);
        let deg: Vec<u32> = (0..g.num_nodes() as u32)
            .map(|v| g.out_degree(v) as u32)
            .collect();
        let batched = batched_ppr(&gt, &deg, &[1, 5, 1], 10);
        let serial = pagerank::ppr(&gt, &deg, 5, 10);
        assert_eq!(batched[1], serial);
        assert_eq!(batched[0], batched[2], "same seed, same answer");
    }

    #[test]
    fn empty_batch_is_empty() {
        let g = graph::builder::from_edges(2, [(0, 1)]);
        assert!(batched_bfs(&g, &[]).is_empty());
    }
}
