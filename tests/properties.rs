//! Property-based integration tests: on arbitrary random graphs, all
//! three systems and all variants agree with the serial references.
//!
//! Runs on the in-tree harness (`substrate::prop`); set `STUDY_PROP_SEED`
//! to replay a reported failure.

use graph_api_study::graph::builder::GraphBuilder;
use graph_api_study::graph::transform::{sort_by_degree, symmetrize};
use graph_api_study::graph::CsrGraph;
use graph_api_study::graphblas::{GaloisRuntime, StaticRuntime};
use graph_api_study::study_core::reference;
use graph_api_study::substrate::prop::{self, Gen};
use graph_api_study::substrate::{prop_assert, prop_assert_eq};
use graph_api_study::{lagraph, lonestar};

const CASES: u32 = 24;

/// An arbitrary weighted directed graph with up to 60 vertices.
fn arb_graph(g: &mut Gen) -> CsrGraph {
    let n = g.gen_range(2usize..60);
    let edges = g.vec(0..300, |g| {
        (
            g.gen_range(0u32..60),
            g.gen_range(0u32..60),
            g.gen_range(1u32..100),
        )
    });
    let mut b = GraphBuilder::new(n).weighted(true);
    for (s, d, w) in edges {
        b.push_edge(s % n as u32, d % n as u32, w);
    }
    b.dedup(true).build()
}

#[test]
fn bfs_systems_match_reference() {
    prop::check(
        "bfs_systems_match_reference",
        prop::cases(CASES),
        |g| (arb_graph(g), g.gen_range(0u32..60)),
        |(g, src_pick)| {
            let src = src_pick % g.num_nodes() as u32;
            let expected = reference::bfs_levels(g, src);
            prop_assert_eq!(&lonestar::bfs::bfs(g, src).level, &expected);
            prop_assert_eq!(&lagraph::bfs::bfs(g, src, GaloisRuntime).unwrap().level, &expected);
            prop_assert_eq!(&lagraph::bfs::bfs(g, src, StaticRuntime).unwrap().level, &expected);
            Ok(())
        },
    );
}

#[test]
fn sssp_systems_match_dijkstra() {
    prop::check(
        "sssp_systems_match_dijkstra",
        prop::cases(CASES),
        |g| (arb_graph(g), g.gen_range(0u32..60), g.gen_range(1u32..16)),
        |(g, src_pick, delta_pow)| {
            let src = src_pick % g.num_nodes() as u32;
            let delta = 1u64 << delta_pow;
            let expected = reference::dijkstra(g, src);
            prop_assert_eq!(&lonestar::sssp::sssp(g, src, delta, true).dist, &expected);
            prop_assert_eq!(&lonestar::sssp::sssp(g, src, delta, false).dist, &expected);
            prop_assert_eq!(
                &lagraph::sssp::sssp_delta_stepping(g, src, delta, GaloisRuntime).unwrap().dist,
                &expected
            );
            Ok(())
        },
    );
}

#[test]
fn cc_systems_produce_reference_partition() {
    prop::check(
        "cc_systems_produce_reference_partition",
        prop::cases(CASES),
        arb_graph,
        |g| {
            let s = symmetrize(g);
            let expected = reference::components(&s);
            prop_assert_eq!(&lonestar::cc::afforest(&s, 2).component, &expected);
            prop_assert_eq!(&lonestar::cc::shiloach_vishkin(&s).component, &expected);
            prop_assert_eq!(
                &lagraph::cc::connected_components(&s, GaloisRuntime).unwrap().component,
                &expected
            );
            Ok(())
        },
    );
}

#[test]
fn tc_variants_match_reference() {
    prop::check("tc_variants_match_reference", prop::cases(CASES), arb_graph, |g| {
        let s = symmetrize(g);
        let expected = reference::triangles(&s);
        let (sorted, _) = sort_by_degree(&s);
        prop_assert_eq!(lonestar::tc::tc(&sorted), expected);
        prop_assert_eq!(
            lagraph::tc::tc_sandia_dot(&s, GaloisRuntime).unwrap().triangles,
            expected
        );
        prop_assert_eq!(
            lagraph::tc::tc_listing(&sorted, GaloisRuntime).unwrap().triangles,
            expected
        );
        Ok(())
    });
}

#[test]
fn ktruss_systems_match_reference() {
    prop::check(
        "ktruss_systems_match_reference",
        prop::cases(CASES),
        |g| (arb_graph(g), g.gen_range(3u32..6)),
        |(g, k)| {
            let k = *k;
            let s = symmetrize(g);
            let expected = reference::ktruss_edges(&s, k);
            prop_assert_eq!(lonestar::ktruss::ktruss(&s, k).edges_remaining, expected);
            prop_assert_eq!(
                lagraph::ktruss::ktruss(&s, k, GaloisRuntime).unwrap().edges_remaining,
                expected
            );
            Ok(())
        },
    );
}

/// Tentpole invariant of the batched query engine: for every batch width
/// k in {1, 4, 17}, on every study-graph shape, column j of batched
/// msBFS / multi-seed PPR / batched SSSP is **bit-identical** to the
/// serial single-source run from source j — across all three kernel
/// modes and 1/2/8 threads. Each lane executes the serial kernel path
/// (same call sequence, same kernel selection, same accumulation order),
/// so even the f64 ppr ranks must match exactly, not within tolerance.
#[test]
fn batched_columns_are_bit_identical_to_serial() {
    use graph_api_study::galois_rt;
    use graph_api_study::graph::{Scale, StudyGraph};
    use graph_api_study::graphblas::ops::{self, KernelMode};
    use graph_api_study::study_core::{batch_sources, PreparedGraph};
    use std::collections::HashMap;

    let saved_mode = ops::kernel_mode();
    let saved_threads = galois_rt::threads();
    for which in [
        StudyGraph::Rmat22,
        StudyGraph::RoadUsaW,
        StudyGraph::Indochina04,
    ] {
        let p = PreparedGraph::study(which, Scale::custom(1.0 / 256.0));
        for mode in [
            KernelMode::Auto,
            KernelMode::Push,
            KernelMode::Pull,
            KernelMode::Bitmap,
        ] {
            ops::set_kernel_mode(mode);
            // Serial answers per source, computed once per (graph, mode):
            // thread count cannot change them (the determinism suite pins
            // that), so every thread sweep compares against the same bits.
            let mut serial_bfs = HashMap::new();
            let mut serial_ppr = HashMap::new();
            let mut serial_sssp = HashMap::new();
            for k in [1usize, 4, 17] {
                let sources = batch_sources(&p, k);
                for &src in &sources {
                    serial_bfs.entry(src).or_insert_with(|| {
                        lagraph::bfs::bfs(&p.graph, src, GaloisRuntime).unwrap()
                    });
                    serial_ppr.entry(src).or_insert_with(|| {
                        lagraph::pagerank::ppr(&p.graph, src, p.pr_iters, GaloisRuntime)
                            .unwrap()
                    });
                    serial_sssp.entry(src).or_insert_with(|| {
                        lagraph::sssp::sssp_minplus(&p.graph, src, GaloisRuntime).unwrap()
                    });
                }
                for threads in [1usize, 2, 8] {
                    galois_rt::set_threads(threads);
                    let ctx = |j: usize| {
                        format!(
                            "{which:?} k={k} mode={mode:?} threads={threads} column {j}"
                        )
                    };
                    let bfs = lagraph::batch::batched_bfs(&p.graph, &sources, GaloisRuntime);
                    let ppr = lagraph::batch::batched_ppr(
                        &p.graph, &sources, p.pr_iters, GaloisRuntime,
                    );
                    let sssp =
                        lagraph::batch::batched_sssp(&p.graph, &sources, GaloisRuntime);
                    for (j, &src) in sources.iter().enumerate() {
                        assert_eq!(
                            bfs[j].as_ref().unwrap(),
                            &serial_bfs[&src],
                            "msBFS {}",
                            ctx(j)
                        );
                        assert_eq!(
                            ppr[j].as_ref().unwrap(),
                            &serial_ppr[&src],
                            "ppr {}",
                            ctx(j)
                        );
                        assert_eq!(
                            sssp[j].as_ref().unwrap(),
                            &serial_sssp[&src],
                            "sssp {}",
                            ctx(j)
                        );
                    }
                }
            }
        }
    }
    ops::set_kernel_mode(saved_mode);
    galois_rt::set_threads(saved_threads);
}

#[test]
fn pagerank_variants_agree() {
    prop::check("pagerank_variants_agree", prop::cases(CASES), arb_graph, |g| {
        let gt = graph_api_study::graph::transform::transpose(g);
        let deg: Vec<u32> = (0..g.num_nodes() as u32).map(|v| g.out_degree(v) as u32).collect();
        let ls = lonestar::pagerank::pagerank(&gt, &deg, 10);
        let gb = lagraph::pagerank::pagerank(g, 10, GaloisRuntime).unwrap();
        for (a, b) in ls.iter().zip(gb.iter()) {
            prop_assert!((a - b).abs() < 1e-10, "pr mismatch: {} vs {}", a, b);
        }
        Ok(())
    });
}
