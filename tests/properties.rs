//! Property-based integration tests: on arbitrary random graphs, all
//! three systems and all variants agree with the serial references.
//!
//! Runs on the in-tree harness (`substrate::prop`); set `STUDY_PROP_SEED`
//! to replay a reported failure.

use graph_api_study::graph::builder::GraphBuilder;
use graph_api_study::graph::transform::{sort_by_degree, symmetrize};
use graph_api_study::graph::CsrGraph;
use graph_api_study::graphblas::{GaloisRuntime, StaticRuntime};
use graph_api_study::study_core::reference;
use graph_api_study::substrate::prop::{self, Gen};
use graph_api_study::substrate::{prop_assert, prop_assert_eq};
use graph_api_study::{lagraph, lonestar};

const CASES: u32 = 24;

/// An arbitrary weighted directed graph with up to 60 vertices.
fn arb_graph(g: &mut Gen) -> CsrGraph {
    let n = g.gen_range(2usize..60);
    let edges = g.vec(0..300, |g| {
        (
            g.gen_range(0u32..60),
            g.gen_range(0u32..60),
            g.gen_range(1u32..100),
        )
    });
    let mut b = GraphBuilder::new(n).weighted(true);
    for (s, d, w) in edges {
        b.push_edge(s % n as u32, d % n as u32, w);
    }
    b.dedup(true).build()
}

#[test]
fn bfs_systems_match_reference() {
    prop::check(
        "bfs_systems_match_reference",
        prop::cases(CASES),
        |g| (arb_graph(g), g.gen_range(0u32..60)),
        |(g, src_pick)| {
            let src = src_pick % g.num_nodes() as u32;
            let expected = reference::bfs_levels(g, src);
            prop_assert_eq!(&lonestar::bfs::bfs(g, src).level, &expected);
            prop_assert_eq!(&lagraph::bfs::bfs(g, src, GaloisRuntime).unwrap().level, &expected);
            prop_assert_eq!(&lagraph::bfs::bfs(g, src, StaticRuntime).unwrap().level, &expected);
            Ok(())
        },
    );
}

#[test]
fn sssp_systems_match_dijkstra() {
    prop::check(
        "sssp_systems_match_dijkstra",
        prop::cases(CASES),
        |g| (arb_graph(g), g.gen_range(0u32..60), g.gen_range(1u32..16)),
        |(g, src_pick, delta_pow)| {
            let src = src_pick % g.num_nodes() as u32;
            let delta = 1u64 << delta_pow;
            let expected = reference::dijkstra(g, src);
            prop_assert_eq!(&lonestar::sssp::sssp(g, src, delta, true).dist, &expected);
            prop_assert_eq!(&lonestar::sssp::sssp(g, src, delta, false).dist, &expected);
            prop_assert_eq!(
                &lagraph::sssp::sssp_delta_stepping(g, src, delta, GaloisRuntime).unwrap().dist,
                &expected
            );
            Ok(())
        },
    );
}

#[test]
fn cc_systems_produce_reference_partition() {
    prop::check(
        "cc_systems_produce_reference_partition",
        prop::cases(CASES),
        arb_graph,
        |g| {
            let s = symmetrize(g);
            let expected = reference::components(&s);
            prop_assert_eq!(&lonestar::cc::afforest(&s, 2).component, &expected);
            prop_assert_eq!(&lonestar::cc::shiloach_vishkin(&s).component, &expected);
            prop_assert_eq!(
                &lagraph::cc::connected_components(&s, GaloisRuntime).unwrap().component,
                &expected
            );
            Ok(())
        },
    );
}

#[test]
fn tc_variants_match_reference() {
    prop::check("tc_variants_match_reference", prop::cases(CASES), arb_graph, |g| {
        let s = symmetrize(g);
        let expected = reference::triangles(&s);
        let (sorted, _) = sort_by_degree(&s);
        prop_assert_eq!(lonestar::tc::tc(&sorted), expected);
        prop_assert_eq!(
            lagraph::tc::tc_sandia_dot(&s, GaloisRuntime).unwrap().triangles,
            expected
        );
        prop_assert_eq!(
            lagraph::tc::tc_listing(&sorted, GaloisRuntime).unwrap().triangles,
            expected
        );
        Ok(())
    });
}

#[test]
fn ktruss_systems_match_reference() {
    prop::check(
        "ktruss_systems_match_reference",
        prop::cases(CASES),
        |g| (arb_graph(g), g.gen_range(3u32..6)),
        |(g, k)| {
            let k = *k;
            let s = symmetrize(g);
            let expected = reference::ktruss_edges(&s, k);
            prop_assert_eq!(lonestar::ktruss::ktruss(&s, k).edges_remaining, expected);
            prop_assert_eq!(
                lagraph::ktruss::ktruss(&s, k, GaloisRuntime).unwrap().edges_remaining,
                expected
            );
            Ok(())
        },
    );
}

#[test]
fn pagerank_variants_agree() {
    prop::check("pagerank_variants_agree", prop::cases(CASES), arb_graph, |g| {
        let gt = graph_api_study::graph::transform::transpose(g);
        let deg: Vec<u32> = (0..g.num_nodes() as u32).map(|v| g.out_degree(v) as u32).collect();
        let ls = lonestar::pagerank::pagerank(&gt, &deg, 10);
        let gb = lagraph::pagerank::pagerank(g, 10, GaloisRuntime).unwrap();
        for (a, b) in ls.iter().zip(gb.iter()) {
            prop_assert!((a - b).abs() < 1e-10, "pr mismatch: {} vs {}", a, b);
        }
        Ok(())
    });
}
