//! Integration tests of the epoch-recycled kernel workspaces.
//!
//! Three invariants:
//!
//! 1. Recycling is invisible in results: every (system, problem) cell
//!    computes the same verified output with `STUDY_WORKSPACE=off` (the
//!    paper-faithful per-call-allocation path) and `=on` (the default).
//! 2. Recycling actually recycles: a warm workspace-enabled pagerank run
//!    satisfies its buffer demand from the pool (near-zero fresh bytes),
//!    and the per-op allocation churn (`alloc_bytes`, which this binary
//!    measures by installing the tracking allocator) drops at least 5x
//!    against the off path on the alloc-gated problems pr and tc.
//! 3. The pool respects `STUDY_MEM_BUDGET`: with a zero budget nothing
//!    is retained between ops.
//!
//! Workspace mode and the allocator counters are process-global, so
//! every test serializes on one mutex.

use graph_api_study::graph::{Scale, StudyGraph};
use graph_api_study::graphblas::{
    self, set_workspace_mode, workspace_mode, WorkspaceMode,
};
use graph_api_study::perfmon;
use graph_api_study::study_core::{
    run, traced_run, verify, PreparedGraph, Problem, System,
};
use std::sync::Mutex;

/// Track allocations so each op span's `alloc_bytes` (transient churn:
/// total allocated minus still-live at op finish) is meaningful in this
/// binary; everywhere else the counters stay zero.
#[global_allocator]
static ALLOC: perfmon::alloc::TrackingAllocator = perfmon::alloc::TrackingAllocator;

static WS_LOCK: Mutex<()> = Mutex::new(());

/// Pins the process-wide workspace mode and restores it on drop.
struct ModePin {
    prev: WorkspaceMode,
}

impl ModePin {
    fn set(mode: WorkspaceMode) -> ModePin {
        let prev = workspace_mode();
        set_workspace_mode(mode);
        ModePin { prev }
    }
}

impl Drop for ModePin {
    fn drop(&mut self) {
        set_workspace_mode(self.prev);
    }
}

#[test]
fn off_and_on_produce_identical_verified_results() {
    let _guard = WS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let p = PreparedGraph::study(StudyGraph::Rmat22, Scale::custom(1.0 / 64.0));
    for problem in Problem::all() {
        for system in System::all() {
            let off = {
                let _pin = ModePin::set(WorkspaceMode::Off);
                run(system, problem, &p)
            };
            let on = {
                let _pin = ModePin::set(WorkspaceMode::On);
                run(system, problem, &p)
            };
            assert_eq!(
                off, on,
                "{system} {problem}: workspace recycling changed the output"
            );
            verify::verify(&p, problem, &on)
                .unwrap_or_else(|e| panic!("{system} {problem}: {e}"));
        }
    }
}

#[test]
fn warm_pagerank_run_is_satisfied_from_the_pool() {
    let _guard = WS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _pin = ModePin::set(WorkspaceMode::On);
    let p = PreparedGraph::study(StudyGraph::Rmat22, Scale::custom(1.0 / 64.0));
    // Cold run populates the pool (and its trace pays the fresh bytes).
    let _cold = traced_run(System::GaloisBlas, Problem::Pr, &p);
    let warm = traced_run(System::GaloisBlas, Problem::Pr, &p);
    let s = warm.trace.summary();
    assert!(
        s.ws_reused_bytes > 0,
        "warm pr must check buffers out of the pool"
    );
    assert!(
        s.ws_fresh_bytes * 10 <= s.ws_reused_bytes,
        "warm pr must allocate near-zero fresh workspace bytes \
         (fresh {} vs reused {})",
        s.ws_fresh_bytes,
        s.ws_reused_bytes
    );
}

#[test]
fn recycling_cuts_alloc_churn_at_least_5x_on_pr_and_tc() {
    let _guard = WS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let p = PreparedGraph::study(StudyGraph::Rmat22, Scale::custom(1.0 / 32.0));
    for problem in [Problem::Pr, Problem::Tc] {
        let off = {
            let _pin = ModePin::set(WorkspaceMode::Off);
            traced_run(System::GaloisBlas, problem, &p)
                .trace
                .summary()
                .alloc_bytes
        };
        let on = {
            let _pin = ModePin::set(WorkspaceMode::On);
            // Warm the pool so the measured run reflects steady state —
            // the regime the bench baseline's traced pass runs in.
            let _warmup = run(System::GaloisBlas, problem, &p);
            traced_run(System::GaloisBlas, problem, &p)
                .trace
                .summary()
                .alloc_bytes
        };
        assert!(
            off >= 5 * on.max(1),
            "{problem}: workspace recycling must cut per-op allocation churn \
             at least 5x (off {off} bytes vs warm on {on} bytes)"
        );
    }
}

#[test]
fn pool_retention_respects_the_memory_budget() {
    let _guard = WS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _pin = ModePin::set(WorkspaceMode::On);
    let prev = graphblas::ops::mem_budget();
    let pool = graphblas::workspace::global();
    let p = PreparedGraph::study(StudyGraph::Rmat22, Scale::custom(1.0 / 128.0));

    // Unlimited budget: measure what a pr run leaves in the pool.
    graphblas::ops::set_mem_budget(None);
    pool.clear();
    let _ = run(System::GaloisBlas, Problem::Pr, &p);
    let unlimited = pool.retained_bytes();
    assert!(unlimited > 0, "pr must leave recycled buffers in the pool");

    // Halving the budget must bound retention without changing results —
    // give() drops over-budget buffers, the kernels fall back to
    // allocating, and the op-level budget gate still admits the sparse
    // paths at this scale.
    let budget = unlimited / 2;
    graphblas::ops::set_mem_budget(Some(budget));
    pool.clear();
    let out = run(System::GaloisBlas, Problem::Pr, &p);
    verify::verify(&p, Problem::Pr, &out).expect("pr must still verify");
    assert!(
        pool.retained_bytes() <= budget,
        "pool retention {} exceeds STUDY_MEM_BUDGET {}",
        pool.retained_bytes(),
        budget
    );

    graphblas::ops::set_mem_budget(prev);
    pool.clear();
}
