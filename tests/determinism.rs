//! Determinism guarantees of the hermetic substrate.
//!
//! Two families of checks:
//!
//! 1. Every synthetic generator is a pure function of its seed — two calls
//!    with the same seed produce bit-identical graphs (offsets, dests and
//!    weights), and different seeds produce different graphs.
//! 2. The study's conclusions depend on comparing systems, so algorithm
//!    *results* must not depend on the thread count: bfs, cc and pagerank
//!    produce identical output on 1, 2 and the default number of threads,
//!    on both the Lonestar and the GaloisBLAS paths.
//! 3. Traces are deterministic: two traced runs at the same seed and
//!    thread count produce identical event streams once the
//!    scheduling-perturbed fields (timings, steals, bucket visits) are
//!    stripped — the invariant `scripts/compare_bench.py` relies on when
//!    it flags counter drifts.

use graph_api_study::galois_rt;
use graph_api_study::graph::gen::{
    community, erdos_renyi, grid_road, preferential_attachment, rmat, web_crawl, RmatParams,
};
use graph_api_study::graph::transform::{symmetrize, transpose};
use graph_api_study::graph::CsrGraph;
use graph_api_study::graphblas::GaloisRuntime;
use graph_api_study::{lagraph, lonestar};

type SeededBuild = Box<dyn Fn(u64) -> CsrGraph>;

#[test]
fn every_generator_is_bit_identical_for_equal_seeds() {
    let builds: Vec<(&str, SeededBuild)> = vec![
        ("rmat", Box::new(|s| rmat(9, 8, RmatParams::default(), s))),
        ("grid_road", Box::new(|s| grid_road(20, 15, s))),
        (
            "preferential_attachment",
            Box::new(|s| preferential_attachment(600, 4, true, s)),
        ),
        ("web_crawl", Box::new(|s| web_crawl(12, 40, s))),
        ("community", Box::new(|s| community(400, 20, s))),
        ("erdos_renyi", Box::new(|s| erdos_renyi(300, 2000, s))),
    ];
    for (name, build) in &builds {
        for seed in [0u64, 1, 42, u64::MAX] {
            let a = build(seed);
            let b = build(seed);
            assert_eq!(a, b, "{name} must be deterministic for seed {seed}");
        }
        assert_ne!(
            build(1),
            build(2),
            "{name} must actually consume its seed"
        );
    }
}

/// Tests that reconfigure the global pool must not interleave.
static POOL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Runs `f` once per thread configuration and asserts all results agree.
fn across_thread_counts<T: PartialEq + std::fmt::Debug>(
    what: &str,
    f: impl Fn() -> T,
) -> T {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let saved = galois_rt::threads();
    let counts = [1usize, 2, saved.max(2)];
    let mut results = Vec::with_capacity(counts.len());
    for &t in &counts {
        galois_rt::set_threads(t);
        results.push((t, f()));
    }
    galois_rt::set_threads(saved);
    let (_, baseline) = results.remove(0);
    for (t, r) in results {
        assert_eq!(r, baseline, "{what} differs between 1 and {t} threads");
    }
    baseline
}

#[test]
fn algorithm_results_do_not_depend_on_thread_count() {
    let g = rmat(9, 8, RmatParams::default(), 7);
    let s = symmetrize(&g);
    let gt = transpose(&g);
    let deg: Vec<u32> = (0..g.num_nodes() as u32)
        .map(|v| g.out_degree(v) as u32)
        .collect();

    // Lonestar path.
    across_thread_counts("lonestar bfs levels", || lonestar::bfs::bfs(&g, 0).level);
    across_thread_counts("lonestar afforest components", || {
        lonestar::cc::afforest(&s, 2).component
    });
    across_thread_counts("lonestar shiloach-vishkin components", || {
        lonestar::cc::shiloach_vishkin(&s).component
    });
    let pr = across_thread_counts("lonestar pagerank scores", || {
        lonestar::pagerank::pagerank(&gt, &deg, 10)
    });
    assert!(pr.iter().all(|x| x.is_finite()));

    // GaloisBLAS path.
    across_thread_counts("lagraph bfs levels", || {
        lagraph::bfs::bfs(&g, 0, GaloisRuntime).unwrap().level
    });
    across_thread_counts("lagraph components", || {
        lagraph::cc::connected_components(&s, GaloisRuntime)
            .unwrap()
            .component
    });
    across_thread_counts("lagraph pagerank scores", || {
        lagraph::pagerank::pagerank(&g, 10, GaloisRuntime).unwrap()
    });
}

#[test]
fn traces_are_deterministic_across_repeated_runs() {
    use graph_api_study::graph::{Scale, StudyGraph};
    use graph_api_study::study_core::{traced_run, PreparedGraph, Problem, System};

    // Tracing state is process-global, so serialize against the other
    // pool-reconfiguring tests. Graph preparation happens outside the
    // traced region.
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let p = PreparedGraph::study(StudyGraph::Rmat22, Scale::custom(1.0 / 64.0));
    for system in System::all() {
        for problem in [Problem::Bfs, Problem::Cc, Problem::Sssp] {
            let a = traced_run(system, problem, &p);
            let b = traced_run(system, problem, &p);
            assert_eq!(a.output, b.output, "{system} {problem} output");
            assert_eq!(
                a.trace.fingerprint(),
                b.trace.fingerprint(),
                "{system} {problem}: trace fingerprints differ between runs"
            );
            assert_eq!(a.trace.dropped, 0, "{system} {problem} dropped events");
        }
    }
}

#[test]
fn generation_is_thread_count_independent() {
    // Generators are serial, but run them under different ambient pool
    // configurations to pin that down.
    let reference = rmat(8, 8, RmatParams::default(), 3);
    let got = across_thread_counts("rmat generation", || {
        rmat(8, 8, RmatParams::default(), 3)
    });
    assert_eq!(got, reference);
}
