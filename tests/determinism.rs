//! Determinism guarantees of the hermetic substrate.
//!
//! Two families of checks:
//!
//! 1. Every synthetic generator is a pure function of its seed — two calls
//!    with the same seed produce bit-identical graphs (offsets, dests and
//!    weights), and different seeds produce different graphs.
//! 2. The study's conclusions depend on comparing systems, so algorithm
//!    *results* must not depend on the thread count: bfs, cc and pagerank
//!    produce identical output on 1, 2 and the default number of threads,
//!    on both the Lonestar and the GaloisBLAS paths.
//! 3. Traces are deterministic: two traced runs at the same seed and
//!    thread count produce identical event streams once the
//!    scheduling-perturbed fields (timings, steals, bucket visits) are
//!    stripped — the invariant `scripts/compare_bench.py` relies on when
//!    it flags counter drifts.
//! 4. The batched query engine degrades exactly to the serial engine: a
//!    width-1 batch emits a trace whose fingerprint equals the serial
//!    run's, and at width 8 msBFS issues strictly fewer matrix-product
//!    spans than eight serial runs while returning bit-identical levels.
//! 5. Streaming ingestion is replayable: absorbing the identical update
//!    stream twice yields fingerprint-identical traces and bit-identical
//!    compacted snapshots, and re-grouping the same ops into different
//!    batch partitions never changes the compacted graph or the repaired
//!    answers.

use graph_api_study::galois_rt;
use graph_api_study::graph::gen::{
    community, erdos_renyi, grid_road, preferential_attachment, rmat, web_crawl, RmatParams,
};
use graph_api_study::graph::transform::{symmetrize, transpose};
use graph_api_study::graph::CsrGraph;
use graph_api_study::graphblas::GaloisRuntime;
use graph_api_study::{lagraph, lonestar};

type SeededBuild = Box<dyn Fn(u64) -> CsrGraph>;

#[test]
fn every_generator_is_bit_identical_for_equal_seeds() {
    let builds: Vec<(&str, SeededBuild)> = vec![
        ("rmat", Box::new(|s| rmat(9, 8, RmatParams::default(), s))),
        ("grid_road", Box::new(|s| grid_road(20, 15, s))),
        (
            "preferential_attachment",
            Box::new(|s| preferential_attachment(600, 4, true, s)),
        ),
        ("web_crawl", Box::new(|s| web_crawl(12, 40, s))),
        ("community", Box::new(|s| community(400, 20, s))),
        ("erdos_renyi", Box::new(|s| erdos_renyi(300, 2000, s))),
    ];
    for (name, build) in &builds {
        for seed in [0u64, 1, 42, u64::MAX] {
            let a = build(seed);
            let b = build(seed);
            assert_eq!(a, b, "{name} must be deterministic for seed {seed}");
        }
        assert_ne!(
            build(1),
            build(2),
            "{name} must actually consume its seed"
        );
    }
}

/// Tests that reconfigure the global pool must not interleave.
static POOL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Runs `f` once per thread configuration and asserts all results agree.
fn across_thread_counts<T: PartialEq + std::fmt::Debug>(
    what: &str,
    f: impl Fn() -> T,
) -> T {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let saved = galois_rt::threads();
    let counts = [1usize, 2, saved.max(2)];
    let mut results = Vec::with_capacity(counts.len());
    for &t in &counts {
        galois_rt::set_threads(t);
        results.push((t, f()));
    }
    galois_rt::set_threads(saved);
    let (_, baseline) = results.remove(0);
    for (t, r) in results {
        assert_eq!(r, baseline, "{what} differs between 1 and {t} threads");
    }
    baseline
}

#[test]
fn algorithm_results_do_not_depend_on_thread_count() {
    let g = rmat(9, 8, RmatParams::default(), 7);
    let s = symmetrize(&g);
    let gt = transpose(&g);
    let deg: Vec<u32> = (0..g.num_nodes() as u32)
        .map(|v| g.out_degree(v) as u32)
        .collect();

    // Lonestar path.
    across_thread_counts("lonestar bfs levels", || lonestar::bfs::bfs(&g, 0).level);
    across_thread_counts("lonestar afforest components", || {
        lonestar::cc::afforest(&s, 2).component
    });
    across_thread_counts("lonestar shiloach-vishkin components", || {
        lonestar::cc::shiloach_vishkin(&s).component
    });
    let pr = across_thread_counts("lonestar pagerank scores", || {
        lonestar::pagerank::pagerank(&gt, &deg, 10)
    });
    assert!(pr.iter().all(|x| x.is_finite()));

    // GaloisBLAS path.
    across_thread_counts("lagraph bfs levels", || {
        lagraph::bfs::bfs(&g, 0, GaloisRuntime).unwrap().level
    });
    across_thread_counts("lagraph components", || {
        lagraph::cc::connected_components(&s, GaloisRuntime)
            .unwrap()
            .component
    });
    across_thread_counts("lagraph pagerank scores", || {
        lagraph::pagerank::pagerank(&g, 10, GaloisRuntime).unwrap()
    });
}

#[test]
fn traces_are_deterministic_across_repeated_runs() {
    use graph_api_study::graph::{Scale, StudyGraph};
    use graph_api_study::study_core::{traced_run, PreparedGraph, Problem, System};

    // Tracing state is process-global, so serialize against the other
    // pool-reconfiguring tests. Graph preparation happens outside the
    // traced region.
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let p = PreparedGraph::study(StudyGraph::Rmat22, Scale::custom(1.0 / 64.0));
    for system in System::all() {
        for problem in [Problem::Bfs, Problem::Cc, Problem::Sssp] {
            let a = traced_run(system, problem, &p);
            let b = traced_run(system, problem, &p);
            assert_eq!(a.output, b.output, "{system} {problem} output");
            assert_eq!(
                a.trace.fingerprint(),
                b.trace.fingerprint(),
                "{system} {problem}: trace fingerprints differ between runs"
            );
            assert_eq!(a.trace.dropped, 0, "{system} {problem} dropped events");
        }
    }
}

/// A width-1 batch is the serial engine, down to the trace: the same
/// call sequence runs through the same kernels, so the fingerprints
/// (which keep every structural span field) must be equal, not merely
/// the outputs. The CI batch matrix leans on this when it runs the
/// suite under `STUDY_BATCH=1`.
#[test]
fn width_one_batched_traces_match_serial() {
    use graph_api_study::graph::{Scale, StudyGraph};
    use graph_api_study::perfmon::trace::with_trace;
    use graph_api_study::study_core::PreparedGraph;

    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let p = PreparedGraph::study(StudyGraph::Rmat22, Scale::custom(1.0 / 64.0));
    let src = p.source;

    let (serial, serial_trace) =
        with_trace(|| lagraph::bfs::bfs(&p.graph, src, GaloisRuntime).unwrap());
    let (batched, batched_trace) =
        with_trace(|| lagraph::batch::batched_bfs(&p.graph, &[src], GaloisRuntime));
    assert_eq!(batched[0].as_ref().unwrap(), &serial, "bfs k=1 output");
    assert_eq!(
        batched_trace.fingerprint(),
        serial_trace.fingerprint(),
        "bfs: width-1 batched trace must be fingerprint-identical to serial"
    );

    let (serial, serial_trace) =
        with_trace(|| lagraph::pagerank::ppr(&p.graph, src, p.pr_iters, GaloisRuntime).unwrap());
    let (batched, batched_trace) = with_trace(|| {
        lagraph::batch::batched_ppr(&p.graph, &[src], p.pr_iters, GaloisRuntime)
    });
    assert_eq!(batched[0].as_ref().unwrap(), &serial, "ppr k=1 output");
    assert_eq!(
        batched_trace.fingerprint(),
        serial_trace.fingerprint(),
        "ppr: width-1 batched trace must be fingerprint-identical to serial"
    );

    let (serial, serial_trace) =
        with_trace(|| lagraph::sssp::sssp_minplus(&p.graph, src, GaloisRuntime).unwrap());
    let (batched, batched_trace) =
        with_trace(|| lagraph::batch::batched_sssp(&p.graph, &[src], GaloisRuntime));
    assert_eq!(batched[0].as_ref().unwrap(), &serial, "sssp k=1 output");
    assert_eq!(
        batched_trace.fingerprint(),
        serial_trace.fingerprint(),
        "sssp: width-1 batched trace must be fingerprint-identical to serial"
    );
}

/// The point of msBFS: at width 8 the levelized sweep advances all live
/// frontiers through ONE product span per round, so the batch issues
/// strictly fewer vxm/mxm spans than the eight serial runs it replaces —
/// while every column stays bit-identical to the serial run from its
/// source (amortization must never buy speed with accuracy).
#[test]
fn batched_msbfs_amortizes_product_spans_at_width_eight() {
    use graph_api_study::graph::{Scale, StudyGraph};
    use graph_api_study::perfmon::trace::{with_trace, OpKind};
    use graph_api_study::study_core::{batch_sources, PreparedGraph};

    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let p = PreparedGraph::study(StudyGraph::Rmat22, Scale::custom(1.0 / 64.0));
    let sources = batch_sources(&p, 8);
    assert_eq!(sources.len(), 8);

    let mut serial_products = 0u64;
    let mut serial_results = Vec::new();
    for &src in &sources {
        let (r, t) = with_trace(|| lagraph::bfs::bfs(&p.graph, src, GaloisRuntime).unwrap());
        serial_products += t.summary().product_rounds;
        serial_results.push(r);
    }

    let (batched, trace) =
        with_trace(|| lagraph::batch::batched_bfs(&p.graph, &sources, GaloisRuntime));
    let batched_products = trace.summary().product_rounds;

    for (j, r) in batched.iter().enumerate() {
        assert_eq!(
            r.as_ref().unwrap(),
            &serial_results[j],
            "msBFS column {j} must be bit-identical to the serial run"
        );
    }
    assert!(
        batched_products < serial_products,
        "msBFS at k=8 must issue fewer product spans than 8 serial runs \
         (batched {batched_products} vs serial {serial_products})"
    );
    // The amortized rounds surface as mxm spans (>=2 live lanes per
    // round); the tail where one lane is left alive degrades to vxm.
    assert!(
        trace.count_ops(OpKind::Mxm) > 0,
        "k=8 msBFS should aggregate live lanes into mxm spans"
    );
}

/// Streaming replay: absorbing the identical update stream twice yields
/// fingerprint-identical traces (delta spans included — apply, compact
/// and repair events carry their structural fields into the
/// fingerprint) and bit-identical compacted snapshots.
#[test]
fn incremental_replay_is_fingerprint_identical() {
    use graph_api_study::graph::{Scale, StudyGraph};
    use graph_api_study::perfmon::trace::with_trace;
    use graph_api_study::study_core::{
        try_run_incremental, update_batches, IncProblem, PreparedGraph, System,
    };

    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let p = PreparedGraph::study(StudyGraph::Rmat22, Scale::custom(1.0 / 128.0));
    let updates = update_batches(&p.graph, 3, 12, 21);
    for system in System::all() {
        for problem in IncProblem::all() {
            let (a, trace_a) =
                with_trace(|| try_run_incremental(system, problem, &p, &updates).unwrap());
            let (b, trace_b) =
                with_trace(|| try_run_incremental(system, problem, &p, &updates).unwrap());
            assert_eq!(a.output, b.output, "{system} {problem} output");
            assert_eq!(a.snapshot, b.snapshot, "{system} {problem} compacted snapshot");
            assert_eq!(a.compactions, b.compactions, "{system} {problem} compactions");
            assert_eq!(
                trace_a.fingerprint(),
                trace_b.fingerprint(),
                "{system} {problem}: streaming trace fingerprints differ between runs"
            );
        }
    }
}

/// Batch-partition invariance: one update stream split into different
/// batch groupings (one 24-op batch vs 24 single-op batches) converges
/// to the identical compacted snapshot and the same repaired answers —
/// layering granularity must never leak into results.
#[test]
fn update_batch_grouping_does_not_change_results() {
    use graph_api_study::graph::{EdgeBatch, Scale, StudyGraph};
    use graph_api_study::study_core::{
        try_run_incremental, update_batches, IncProblem, PreparedGraph, ProblemOutput, System,
    };

    let p = PreparedGraph::study(StudyGraph::Rmat22, Scale::custom(1.0 / 128.0));
    let coarse = update_batches(&p.graph, 1, 24, 33);
    let singles: Vec<EdgeBatch> = coarse[0]
        .ops()
        .iter()
        .map(|&op| {
            let mut b = EdgeBatch::new();
            b.push(op);
            b
        })
        .collect();
    assert_eq!(singles.len(), 24);

    for system in System::all() {
        for problem in IncProblem::all() {
            let one = try_run_incremental(system, problem, &p, &coarse)
                .unwrap_or_else(|e| panic!("{system} {problem} coarse: {e}"));
            let many = try_run_incremental(system, problem, &p, &singles)
                .unwrap_or_else(|e| panic!("{system} {problem} singles: {e}"));
            assert_eq!(
                one.snapshot, many.snapshot,
                "{system} {problem}: groupings must compact to the same snapshot"
            );
            match (&one.output, &many.output) {
                (ProblemOutput::Ranks(a), ProblemOutput::Ranks(b)) => {
                    // Both converged to residual 1e-12 on the same final
                    // graph; the grouping only changes the warm starts.
                    for (v, (x, y)) in a.iter().zip(b).enumerate() {
                        assert!(
                            (x - y).abs() <= 1e-9,
                            "{system} {problem} vertex {v}: {x} vs {y}"
                        );
                    }
                }
                (a, b) => assert_eq!(
                    a, b,
                    "{system} {problem}: discrete answers must be grouping-independent"
                ),
            }
        }
    }
}

#[test]
fn generation_is_thread_count_independent() {
    // Generators are serial, but run them under different ambient pool
    // configurations to pin that down.
    let reference = rmat(8, 8, RmatParams::default(), 3);
    let got = across_thread_counts("rmat generation", || {
        rmat(8, 8, RmatParams::default(), 3)
    });
    assert_eq!(got, reference);
}
