//! Degenerate-input integration tests: every algorithm must handle empty
//! graphs, single vertices, isolated sources and self loops without
//! panicking, in both API styles. The streaming tests at the bottom pin
//! the delta-layer contract on its own degenerate inputs: no-op deletes,
//! duplicate inserts, updates naming vertices past the snapshot's max
//! id, empty batches and malformed batch text.

use graph_api_study::graph::builder::{from_edges, GraphBuilder};
use graph_api_study::graph::{CsrGraph, DeltaGraph, EdgeBatch};
use graph_api_study::graphblas::GaloisRuntime;
use graph_api_study::{lagraph, lonestar};

fn single_vertex() -> CsrGraph {
    GraphBuilder::new(1).build()
}

#[test]
fn bfs_on_single_vertex() {
    let g = single_vertex();
    assert_eq!(lonestar::bfs::bfs(&g, 0).level, vec![1]);
    assert_eq!(lagraph::bfs::bfs(&g, 0, GaloisRuntime).unwrap().level, vec![1]);
    assert_eq!(lonestar::bfs::bfs_parent(&g, 0), vec![0]);
    assert_eq!(
        lagraph::bfs::bfs_parent(&g, 0, GaloisRuntime).unwrap(),
        vec![0]
    );
}

#[test]
fn sssp_from_isolated_source() {
    let g = from_edges(3, [(1, 2)]);
    let expected = vec![0, u64::MAX, u64::MAX];
    assert_eq!(lonestar::sssp::sssp(&g, 0, 8, true).dist, expected);
    assert_eq!(
        lagraph::sssp::sssp_delta_stepping(&g, 0, 8, GaloisRuntime)
            .unwrap()
            .dist,
        expected
    );
}

#[test]
fn cc_on_edgeless_graph() {
    let g = GraphBuilder::new(5).build();
    let expected: Vec<u32> = (0..5).collect();
    assert_eq!(lonestar::cc::afforest(&g, 2).component, expected);
    assert_eq!(lonestar::cc::shiloach_vishkin(&g).component, expected);
    assert_eq!(
        lagraph::cc::connected_components(&g, GaloisRuntime)
            .unwrap()
            .component,
        expected
    );
}

#[test]
fn tc_and_ktruss_on_edgeless_graph() {
    let g = GraphBuilder::new(4).build();
    assert_eq!(lonestar::tc::tc(&g), 0);
    assert_eq!(
        lagraph::tc::tc_sandia_dot(&g, GaloisRuntime).unwrap().triangles,
        0
    );
    assert_eq!(lonestar::ktruss::ktruss(&g, 3).edges_remaining, 0);
    assert_eq!(
        lagraph::ktruss::ktruss(&g, 3, GaloisRuntime)
            .unwrap()
            .edges_remaining,
        0
    );
}

#[test]
fn pagerank_on_single_vertex_is_finite() {
    let g = single_vertex();
    let gt = graph_api_study::graph::transform::transpose(&g);
    let pr = lonestar::pagerank::pagerank(&gt, &[0], 10);
    assert_eq!(pr.len(), 1);
    assert!(pr[0].is_finite());
    let gb = lagraph::pagerank::pagerank(&g, 10, GaloisRuntime).unwrap();
    assert!((pr[0] - gb[0]).abs() < 1e-12);
}

#[test]
fn self_loops_do_not_break_traversals() {
    let g = from_edges(3, [(0, 0), (0, 1), (1, 1), (1, 2)]);
    assert_eq!(lonestar::bfs::bfs(&g, 0).level, vec![1, 2, 3]);
    assert_eq!(
        lagraph::bfs::bfs(&g, 0, GaloisRuntime).unwrap().level,
        vec![1, 2, 3]
    );
    let d = lonestar::sssp::sssp(&g.clone().with_random_weights(9, 1), 0, 4, true).dist;
    assert_eq!(d[0], 0);
    assert!(d[1] > 0 && d[2] > d[1] || d[2] >= d[1]);
}

#[test]
fn kcore_on_self_loop_free_requirement_is_met_by_symmetrize() {
    let g = graph_api_study::graph::transform::symmetrize(&from_edges(3, [(0, 0), (0, 1)]));
    let ls = lonestar::kcore::kcore(&g, 1);
    let gb = lagraph::kcore::kcore(&g, 1, GaloisRuntime).unwrap();
    assert_eq!(ls.in_core, gb.in_core);
    assert_eq!(ls.in_core, vec![true, true, false]);
}

#[test]
fn betweenness_of_single_vertex_is_zero() {
    let g = single_vertex();
    assert_eq!(lonestar::bc::betweenness(&g, &[0]), vec![0.0]);
    assert_eq!(
        lagraph::bc::betweenness(&g, &[0], GaloisRuntime)
            .unwrap()
            .centrality,
        vec![0.0]
    );
}

#[test]
fn deleting_a_never_inserted_edge_is_a_recorded_no_op() {
    let g = from_edges(3, [(0, 1), (1, 2)]);
    let mut d = DeltaGraph::with_threshold(g.clone(), 0);
    let stats = d.apply(&EdgeBatch::new().delete(2, 0)).unwrap();
    assert_eq!(stats.missing_deletes, 1);
    assert_eq!(stats.deleted, 0);
    assert_eq!(d.num_edges(), 2, "merged state must be unchanged");
    d.compact().unwrap();
    assert_eq!(d.snapshot(), &g, "a no-op delete must compact to the original");
}

#[test]
fn duplicate_inserts_stack_and_one_delete_removes_them_all() {
    let g = from_edges(2, [(0, 1)]);
    let mut d = DeltaGraph::with_threshold(g, 0);
    let stats = d.apply(&EdgeBatch::new().insert(0, 1).insert(0, 1)).unwrap();
    assert_eq!(stats.inserted, 2);
    assert_eq!(d.out_degree(0), 3, "duplicate inserts are parallel edges");
    let stats = d.apply(&EdgeBatch::new().delete(0, 1)).unwrap();
    assert_eq!(stats.deleted, 3, "delete removes every (src, dst) occurrence");
    assert_eq!(d.out_degree(0), 0);
    d.compact().unwrap();
    assert_eq!(d.snapshot().num_edges(), 0);
}

#[test]
fn updates_past_the_snapshot_max_id_grow_the_graph() {
    let g = from_edges(2, [(0, 1)]);
    let mut d = DeltaGraph::with_threshold(g, 0);
    let stats = d.apply(&EdgeBatch::new().insert(1, 5)).unwrap();
    assert_eq!(stats.grew_nodes, 4, "ids 2..=5 appear");
    assert_eq!(d.num_nodes(), 6);
    let m = d.materialize();
    assert_eq!(m.num_nodes(), 6);
    assert_eq!(
        lonestar::bfs::bfs(&m, 0).level,
        vec![1, 2, 0, 0, 0, 3],
        "traversals must see the grown vertex through the merged view"
    );
}

#[test]
fn empty_batches_make_no_layers_and_compaction_stays_a_no_op() {
    let g = from_edges(3, [(0, 1), (1, 2)]);
    let mut d = DeltaGraph::with_threshold(g.clone(), 0);
    let stats = d.apply(&EdgeBatch::new()).unwrap();
    assert_eq!(stats.touched, 0);
    assert_eq!(d.layer_count(), 0, "an empty batch must not open a layer");
    d.compact().unwrap();
    assert_eq!(d.compactions(), 0, "compacting zero layers is free");
    assert_eq!(d.snapshot(), &g);
}

#[test]
fn batch_parsing_rejects_garbage_and_accepts_the_documented_forms() {
    let batch = EdgeBatch::parse("# warmup\n+ 0 1\n+ 2 3 7\n- 1 0\n").unwrap();
    assert_eq!(batch.len(), 3);
    assert!(batch.has_deletes());
    assert!(EdgeBatch::parse("* 1 2").is_err(), "unknown op marker");
    assert!(EdgeBatch::parse("+ 1").is_err(), "missing destination");
    assert!(EdgeBatch::parse("+ a b").is_err(), "non-numeric endpoint");
    assert!(EdgeBatch::parse("- 1 2 3").is_err(), "deletes take no weight");
}

#[test]
fn empty_source_list_bc_is_all_zero() {
    let g = from_edges(4, [(0, 1), (1, 2), (2, 3)]);
    assert!(lonestar::bc::betweenness(&g, &[]).iter().all(|&x| x == 0.0));
    assert!(lagraph::bc::betweenness(&g, &[], GaloisRuntime)
        .unwrap()
        .centrality
        .iter()
        .all(|&x| x == 0.0));
}
