//! Integration: the delta-encoded CSR representation (`STUDY_CSR=delta`)
//! round-trips on every study shape and is output-equivalent to the
//! plain representation on the GraphBLAS variants.

use graph_api_study::graph::{Scale, StudyGraph};
use graph_api_study::graphblas::delta_csr::encode;
use graph_api_study::graphblas::{set_csr_mode, CsrMode};
use graph_api_study::study_core::runner::run_variant;
use graph_api_study::study_core::{PreparedGraph, Variant};

/// `set_csr_mode` is process-global; serialize the tests that toggle it.
static MODE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn delta_round_trips_on_all_nine_study_shapes() {
    // The CSR builder counting-sorts adjacency, so every study shape has
    // ascending rows and must gap-encode; decoding must reproduce the
    // plain index array exactly.
    for which in StudyGraph::all() {
        let g = which.build(Scale::custom(1.0 / 256.0));
        let d = encode(g.offsets(), g.dests())
            .unwrap_or_else(|| panic!("{}: sorted CSR must gap-encode", which.name()));
        assert_eq!(
            d.decode_all(),
            g.dests(),
            "{}: decode must reproduce the plain column indices",
            which.name()
        );
        if which.is_road() {
            // The compression claim the representation exists for: on
            // high-locality road/grid shapes the gap stream beats the
            // 4-byte/edge plain array.
            assert!(
                d.stream_bytes() < g.dests().len() * 4,
                "{}: {} stream bytes vs {} plain",
                which.name(),
                d.stream_bytes(),
                g.dests().len() * 4
            );
        }
    }
}

#[test]
fn delta_mode_is_output_equivalent_to_plain() {
    let _guard = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // One high-locality shape (delta pays) and one scale-free shape
    // (delta still correct), across the GraphBLAS-path variants that
    // exercise vxm/mxv row iteration.
    for which in [StudyGraph::RoadUsa, StudyGraph::Rmat22] {
        let p = PreparedGraph::study(which, Scale::custom(1.0 / 128.0));
        for variant in [Variant::PrGb, Variant::SsspGb, Variant::CcGb] {
            set_csr_mode(CsrMode::Plain);
            let plain = run_variant(variant, &p);
            set_csr_mode(CsrMode::Delta);
            let delta = run_variant(variant, &p);
            set_csr_mode(CsrMode::Plain);
            assert_eq!(
                plain,
                delta,
                "{} on {}: delta CSR must be bit-identical to plain",
                variant.name(),
                p.name
            );
        }
    }
}
