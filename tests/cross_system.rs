//! Integration: every system computes verified results on every study
//! graph shape (at test scale), and every Figure 3 algorithm variant
//! agrees with the serial reference on those same shapes.

use graph_api_study::graph::{Scale, StudyGraph};
use graph_api_study::study_core::runner::run_variant;
use graph_api_study::study_core::{run, verify, PreparedGraph, Problem, System, Variant};

fn check_all_problems(which: StudyGraph) {
    let p = PreparedGraph::study(which, Scale::custom(1.0 / 128.0));
    for problem in Problem::all() {
        for system in System::all() {
            let out = run(system, problem, &p);
            verify::verify(&p, problem, &out).unwrap_or_else(|e| {
                panic!("{system} {problem} on {}: {e}", p.name);
            });
        }
    }
}

/// Every Figure 3 panel variant (pr, tc, cc, sssp) verified against the
/// serial reference on one shape.
fn check_variant_panels(which: StudyGraph) {
    let p = PreparedGraph::study(which, Scale::custom(1.0 / 128.0));
    for problem in [Problem::Pr, Problem::Tc, Problem::Cc, Problem::Sssp] {
        let panel = Variant::panel(problem);
        assert!(!panel.is_empty(), "{problem} has no Figure 3 panel");
        for &variant in panel {
            assert_eq!(variant.problem(), problem);
            let out = run_variant(variant, &p);
            verify::verify(&p, problem, &out).unwrap_or_else(|e| {
                panic!("{} {problem} on {}: {e}", variant.name(), p.name);
            });
        }
    }
}

fn check_shape(which: StudyGraph) {
    check_all_problems(which);
    check_variant_panels(which);
}

#[test]
fn road_network_shape() {
    check_shape(StudyGraph::RoadUsaW);
}

#[test]
fn power_law_shape() {
    check_shape(StudyGraph::Rmat22);
}

#[test]
fn web_crawl_shape() {
    check_shape(StudyGraph::Uk07);
}

#[test]
fn social_network_shape() {
    check_shape(StudyGraph::Twitter40);
}

#[test]
fn undirected_social_shape() {
    check_shape(StudyGraph::Friendster);
}

#[test]
fn dense_community_shape() {
    check_shape(StudyGraph::Eukarya);
}

#[test]
fn weighted_road_shape() {
    check_shape(StudyGraph::RoadUsa);
}
