//! Integration: every system computes verified results on every study
//! graph shape (at test scale).

use graph_api_study::graph::{Scale, StudyGraph};
use graph_api_study::study_core::{run, verify, PreparedGraph, Problem, System};

fn check_all_problems(which: StudyGraph) {
    let p = PreparedGraph::study(which, Scale::custom(1.0 / 128.0));
    for problem in Problem::all() {
        for system in System::all() {
            let out = run(system, problem, &p);
            verify::verify(&p, problem, &out).unwrap_or_else(|e| {
                panic!("{system} {problem} on {}: {e}", p.name);
            });
        }
    }
}

#[test]
fn road_network_shape() {
    check_all_problems(StudyGraph::RoadUsaW);
}

#[test]
fn power_law_shape() {
    check_all_problems(StudyGraph::Rmat22);
}

#[test]
fn web_crawl_shape() {
    check_all_problems(StudyGraph::Uk07);
}

#[test]
fn social_network_shape() {
    check_all_problems(StudyGraph::Twitter40);
}

#[test]
fn undirected_social_shape() {
    check_all_problems(StudyGraph::Friendster);
}

#[test]
fn dense_community_shape() {
    check_all_problems(StudyGraph::Eukarya);
}
