//! Integration: every system computes verified results on every study
//! graph shape (at test scale), every Figure 3 algorithm variant agrees
//! with the serial reference on those same shapes, and the batched
//! query engine agrees with the per-query Lonestar worklist runs.

use graph_api_study::graph::{Scale, StudyGraph};
use graph_api_study::study_core::runner::run_variant;
use graph_api_study::study_core::{
    batch_sources, batch_width_from_env, run, try_run_batch, verify, verify_batch_query,
    BatchProblem, PreparedGraph, Problem, ProblemOutput, System, Variant,
};

fn check_all_problems(which: StudyGraph) {
    let p = PreparedGraph::study(which, Scale::custom(1.0 / 128.0));
    for problem in Problem::all() {
        for system in System::all() {
            let out = run(system, problem, &p);
            verify::verify(&p, problem, &out).unwrap_or_else(|e| {
                panic!("{system} {problem} on {}: {e}", p.name);
            });
        }
    }
}

/// Every Figure 3 panel variant (pr, tc, cc, sssp) verified against the
/// serial reference on one shape.
fn check_variant_panels(which: StudyGraph) {
    let p = PreparedGraph::study(which, Scale::custom(1.0 / 128.0));
    for problem in [Problem::Pr, Problem::Tc, Problem::Cc, Problem::Sssp] {
        let panel = Variant::panel(problem);
        assert!(!panel.is_empty(), "{problem} has no Figure 3 panel");
        for &variant in panel {
            assert_eq!(variant.problem(), problem);
            let out = run_variant(variant, &p);
            verify::verify(&p, problem, &out).unwrap_or_else(|e| {
                panic!("{} {problem} on {}: {e}", variant.name(), p.name);
            });
        }
    }
}

fn check_shape(which: StudyGraph) {
    check_all_problems(which);
    check_variant_panels(which);
}

/// Batched matrix-API queries cross-checked against the per-query
/// worklist runs: for every batched problem, column j of the SS and GB
/// batched engines must agree with the Lonestar (LS) answer for source
/// j — exactly for bfs levels and sssp distances, within the pr
/// verification tolerance for the f64 ppr ranks — and every query must
/// also verify against its own serial reference.
fn check_batched_vs_lonestar(which: StudyGraph, width: usize) {
    let p = PreparedGraph::study(which, Scale::custom(1.0 / 128.0));
    let sources = batch_sources(&p, width);
    for problem in BatchProblem::all() {
        let ls = try_run_batch(System::Lonestar, problem, &p, &sources);
        for system in [System::SuiteSparse, System::GaloisBlas] {
            let batched = try_run_batch(system, problem, &p, &sources);
            assert_eq!(batched.len(), sources.len());
            for (j, result) in batched.iter().enumerate() {
                let out = result.as_ref().unwrap_or_else(|e| {
                    panic!("{system} {problem} on {} query {j}: {e}", p.name)
                });
                let expected = ls[j].as_ref().unwrap();
                match (out, expected) {
                    (ProblemOutput::Ranks(a), ProblemOutput::Ranks(b)) => {
                        for (v, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                            assert!(
                                (x - y).abs() <= 1e-10 * y.abs().max(1.0),
                                "{system} {problem} on {} query {j} vertex {v}: {x} vs {y}",
                                p.name
                            );
                        }
                    }
                    (a, b) => assert_eq!(
                        a, b,
                        "{system} {problem} on {} query {j} disagrees with LS",
                        p.name
                    ),
                }
                verify_batch_query(&p, problem, sources[j], out).unwrap_or_else(|e| {
                    panic!("{system} {problem} on {} query {j}: {e}", p.name)
                });
            }
        }
    }
}

#[test]
fn batched_queries_agree_with_lonestar_per_query() {
    // Honor STUDY_BATCH (the CI batch matrix pins 1 and 8); off-CI the
    // default env width is 1, so also sweep a >1 width to keep the
    // multi-lane path covered by a plain `cargo test`.
    let mut widths = vec![batch_width_from_env()];
    if !widths.contains(&5) {
        widths.push(5);
    }
    for width in widths {
        for which in [
            StudyGraph::Rmat22,
            StudyGraph::RoadUsaW,
            StudyGraph::Indochina04,
        ] {
            check_batched_vs_lonestar(which, width);
        }
    }
}

#[test]
fn road_network_shape() {
    check_shape(StudyGraph::RoadUsaW);
}

#[test]
fn power_law_shape() {
    check_shape(StudyGraph::Rmat22);
}

#[test]
fn web_crawl_shape() {
    check_shape(StudyGraph::Uk07);
}

#[test]
fn social_network_shape() {
    check_shape(StudyGraph::Twitter40);
}

#[test]
fn undirected_social_shape() {
    check_shape(StudyGraph::Friendster);
}

#[test]
fn dense_community_shape() {
    check_shape(StudyGraph::Eukarya);
}

#[test]
fn weighted_road_shape() {
    check_shape(StudyGraph::RoadUsa);
}
