//! Differential suite for streaming ingestion with incremental
//! recompute.
//!
//! The contract under test: after absorbing any stream of edge-update
//! batches, every incremental algorithm's answer equals a from-scratch
//! recompute on the compacted snapshot — bit-exactly for bfs levels and
//! component labels, within an absolute `1e-9` for pagerank (both sides
//! converge to residual `1e-12`). `study_core::verify_incremental`
//! encodes exactly that comparison, so the tests here drive it:
//!
//! 1. across every study topology (all nine Table I shapes), on all
//!    three systems, with seeded random update streams that mix inserts,
//!    deletes of real snapshot edges and no-op deletes;
//! 2. across the full execution-mode matrix — push/pull/auto SpMV
//!    kernels × 1/2/8 threads × workspace recycling on/off — where the
//!    repaired outputs must additionally be identical *across* the
//!    configurations (kernel selection and scheduling must never leak
//!    into results);
//! 3. under the cell isolation boundary, where a full sweep of
//!    incremental cells completes with per-cell ok statuses.

use graph_api_study::galois_rt;
use graph_api_study::graph::{Scale, StudyGraph};
use graph_api_study::graphblas::ops::{kernel_mode, set_kernel_mode, KernelMode};
use graph_api_study::graphblas::{set_workspace_mode, workspace_mode, WorkspaceMode};
use graph_api_study::study_core::{
    run_incremental_cell, try_run_incremental, update_batches, verify_incremental, IncProblem,
    PreparedGraph, ProblemOutput, System,
};
use std::sync::{Arc, Mutex};

/// Tests that reconfigure process-global execution modes must not
/// interleave.
static POOL_LOCK: Mutex<()> = Mutex::new(());

/// Every incremental (problem, system) combination on one prepared
/// graph, each verified against the from-scratch recompute on its
/// compacted snapshot. Returns the outputs keyed for cross-config
/// comparison.
fn check_all(p: &PreparedGraph, seed: u64) -> Vec<(IncProblem, System, ProblemOutput)> {
    let updates = update_batches(&p.graph, 3, 12, seed);
    let mut out = Vec::new();
    for problem in IncProblem::all() {
        for system in System::all() {
            let run = try_run_incremental(system, problem, p, &updates)
                .unwrap_or_else(|e| panic!("{} {system} {problem}: {e}", p.name));
            verify_incremental(p, problem, &run)
                .unwrap_or_else(|e| panic!("{} {system} {problem}: {e}", p.name));
            out.push((problem, system, run.output));
        }
    }
    out
}

#[test]
fn every_study_shape_verifies_incrementally() {
    for (gi, which) in StudyGraph::all().into_iter().enumerate() {
        let p = PreparedGraph::study(which, Scale::custom(1.0 / 256.0));
        check_all(&p, gi as u64);
    }
}

#[test]
fn repairs_are_identical_across_kernels_threads_and_workspaces() {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let saved_threads = galois_rt::threads();
    let saved_ws = workspace_mode();
    let saved_kernel = kernel_mode();
    let p = PreparedGraph::study(StudyGraph::Rmat22, Scale::custom(1.0 / 128.0));

    let mut baseline: Option<Vec<(IncProblem, System, ProblemOutput)>> = None;
    for kernel in [
        KernelMode::Auto,
        KernelMode::Push,
        KernelMode::Pull,
        KernelMode::Bitmap,
    ] {
        for threads in [1usize, 2, 8] {
            for ws in [WorkspaceMode::On, WorkspaceMode::Off] {
                set_kernel_mode(kernel);
                galois_rt::set_threads(threads);
                set_workspace_mode(ws);
                let got = check_all(&p, 99);
                match &baseline {
                    None => baseline = Some(got),
                    Some(expect) => {
                        for ((ep, es, eo), (_, _, go)) in expect.iter().zip(&got) {
                            match (eo, go) {
                                (ProblemOutput::Ranks(a), ProblemOutput::Ranks(b)) => {
                                    // Kernel/thread choice may reorder f64
                                    // sums on the matrix path; both sit
                                    // within the converged band.
                                    for (x, y) in a.iter().zip(b) {
                                        assert!(
                                            (x - y).abs() <= 1e-9,
                                            "{es} {ep} drifts across \
                                             {kernel:?}/{threads}t/{ws:?}: {x} vs {y}"
                                        );
                                    }
                                }
                                _ => assert_eq!(
                                    eo, go,
                                    "{es} {ep} must be identical across \
                                     {kernel:?}/{threads}t/{ws:?}"
                                ),
                            }
                        }
                    }
                }
            }
        }
    }
    set_kernel_mode(saved_kernel);
    galois_rt::set_threads(saved_threads);
    set_workspace_mode(saved_ws);
}

#[test]
fn incremental_sweep_is_all_ok_under_cell_isolation() {
    let p = Arc::new(PreparedGraph::study(
        StudyGraph::RoadUsaW,
        Scale::custom(1.0 / 128.0),
    ));
    let updates = update_batches(&p.graph, 2, 16, 7);
    for problem in IncProblem::all() {
        for system in System::all() {
            let out = run_incremental_cell(system, problem, &p, &updates);
            assert!(out.is_ok(), "{system} {problem}: {:?}", out.error);
            let run = out.value.expect("ok cell has a value");
            assert_eq!(run.absorbed, 32);
            assert!(run.compactions >= 1, "final compaction is forced");
            verify_incremental(&p, problem, &run)
                .unwrap_or_else(|e| panic!("{system} {problem}: {e}"));
        }
    }
}
