//! Integration tests that pin the paper's *quantitative* claims as
//! invariants: the matrix API must measurably execute more instructions
//! and memory accesses than the graph API for the workloads §V-B
//! analyzes.
//!
//! The perfmon counters are process-global, so these tests serialize on
//! a mutex.

use graph_api_study::graph::{Scale, StudyGraph};
use graph_api_study::graphblas::ops::{kernel_mode, set_kernel_mode, KernelMode};
use graph_api_study::graphblas::{set_workspace_mode, workspace_mode, WorkspaceMode};
use graph_api_study::perfmon;
use graph_api_study::study_core::{run, PreparedGraph, Problem, System};
use std::sync::Mutex;

static PERF_LOCK: Mutex<()> = Mutex::new(());

/// Pins the process-wide SpMV policy to the paper's fixed strategies for
/// the duration of a counter test (the quantitative claims below describe
/// the *paper's* kernels, not the direction-optimizing `auto` ones), and
/// pins workspace recycling off so every GrB call allocates per-call the
/// way the paper's implementations do — the counter ratios quantify that
/// allocation and traversal overhead, so the recycled fast path would
/// understate them. Restores both policies on drop. Callers must already
/// hold `PERF_LOCK` — kernel and workspace policy are process-global,
/// like the counters.
struct KernelPin {
    prev: KernelMode,
    prev_ws: WorkspaceMode,
}

impl KernelPin {
    fn paper_kernels() -> KernelPin {
        let prev = kernel_mode();
        let prev_ws = workspace_mode();
        set_kernel_mode(KernelMode::Push);
        set_workspace_mode(WorkspaceMode::Off);
        KernelPin { prev, prev_ws }
    }
}

impl Drop for KernelPin {
    fn drop(&mut self) {
        set_kernel_mode(self.prev);
        set_workspace_mode(self.prev_ws);
    }
}

fn counters_for(system: System, problem: Problem, p: &PreparedGraph) -> perfmon::Counters {
    perfmon::reset();
    perfmon::enable(true);
    let out = run(system, problem, p);
    perfmon::enable(false);
    std::hint::black_box(&out);
    perfmon::snapshot()
}

fn assert_gb_exceeds_ls(problem: Problem, which: StudyGraph, min_instr_ratio: f64) {
    let _guard = PERF_LOCK.lock().unwrap();
    let _pin = KernelPin::paper_kernels();
    let p = PreparedGraph::study(which, Scale::custom(1.0 / 32.0));
    let gb = counters_for(System::GaloisBlas, problem, &p);
    let ls = counters_for(System::Lonestar, problem, &p);
    let instr_ratio = gb.instructions as f64 / ls.instructions.max(1) as f64;
    assert!(
        instr_ratio >= min_instr_ratio,
        "{problem} on {which}: GB/LS instruction ratio {instr_ratio:.2} < {min_instr_ratio}"
    );
    assert!(
        gb.l1_accesses > ls.l1_accesses,
        "{problem} on {which}: GB must make more memory accesses ({} vs {})",
        gb.l1_accesses,
        ls.l1_accesses
    );
}

#[test]
fn bfs_lightweight_loops_cost_instructions() {
    // §V-B bfs: three passes per round vs one fused loop.
    assert_gb_exceeds_ls(Problem::Bfs, StudyGraph::RoadUsa, 2.0);
}

#[test]
fn cc_bulk_jumping_costs_instructions() {
    // §V-B cc: bounded bulk pointer jumping vs Afforest sampling.
    assert_gb_exceeds_ls(Problem::Cc, StudyGraph::Twitter40, 5.0);
}

#[test]
fn sssp_round_based_execution_costs_instructions() {
    // §V-B sssp: bulk-synchronous rounds vs one asynchronous work-list.
    assert_gb_exceeds_ls(Problem::Sssp, StudyGraph::RoadUsa, 2.0);
}

#[test]
fn ktruss_materialization_costs_instructions() {
    assert_gb_exceeds_ls(Problem::Ktruss, StudyGraph::Rmat22, 2.0);
}

#[test]
fn tc_materializes_more_memory_traffic_not_instructions() {
    // §V-B tc: gb-ll may execute FEWER instructions than ls (preprocessing
    // removed runtime symmetry breaking) yet MORE memory accesses. For the
    // Table II variants (SandiaDot vs listing) the signature the paper
    // reports is on memory accesses.
    let _guard = PERF_LOCK.lock().unwrap();
    let _pin = KernelPin::paper_kernels();
    let p = PreparedGraph::study(StudyGraph::Uk07, Scale::custom(1.0 / 32.0));
    let gb = counters_for(System::GaloisBlas, Problem::Tc, &p);
    let ls = counters_for(System::Lonestar, Problem::Tc, &p);
    assert!(
        gb.l1_accesses > ls.l1_accesses,
        "tc GB must touch more memory: {} vs {}",
        gb.l1_accesses,
        ls.l1_accesses
    );
}

#[test]
fn pr_double_traversal_of_residual_shows_in_memory_accesses() {
    // Table V: gb-res makes roughly twice the L1 accesses of the fused
    // Lonestar loop.
    use graph_api_study::study_core::runner::run_variant;
    use graph_api_study::study_core::Variant;
    let _guard = PERF_LOCK.lock().unwrap();
    let _pin = KernelPin::paper_kernels();
    let p = PreparedGraph::study(StudyGraph::Rmat22, Scale::custom(1.0 / 32.0));
    let measure = |variant| {
        perfmon::reset();
        perfmon::enable(true);
        let out = run_variant(variant, &p);
        perfmon::enable(false);
        std::hint::black_box(&out);
        perfmon::snapshot()
    };
    let gb_res = measure(Variant::PrGbRes);
    let ls_soa = measure(Variant::PrLsSoa);
    assert!(
        gb_res.l1_accesses as f64 >= 1.3 * ls_soa.l1_accesses as f64,
        "gb-res L1 {} should exceed ls-soa L1 {} by the extra residual pass",
        gb_res.l1_accesses,
        ls_soa.l1_accesses
    );
}

#[test]
fn traced_bfs_shows_extra_passes_and_materialization() {
    // §V-B bfs through the op-level trace instead of the hardware-model
    // counters: the matrix API issues at least as many passes over the
    // data as the graph API (several GrB calls per round vs one fused
    // loop), and materializes a dense accumulator on every vxm round
    // while the graph API materializes nothing.
    use graph_api_study::perfmon::trace::OpKind;
    use graph_api_study::study_core::traced_run;
    let _guard = PERF_LOCK.lock().unwrap();
    let _pin = KernelPin::paper_kernels();
    let p = PreparedGraph::study(StudyGraph::Rmat22, Scale::custom(1.0 / 32.0));
    let gb = traced_run(System::GaloisBlas, Problem::Bfs, &p);
    let ls = traced_run(System::Lonestar, Problem::Bfs, &p);

    let gbs = gb.trace.summary();
    let lss = ls.trace.summary();
    assert!(
        gbs.passes >= lss.passes,
        "GB must issue at least as many passes as LS ({} vs {})",
        gbs.passes,
        lss.passes
    );

    // Every GB round is a vxm (or mxv) frontier expansion that
    // materializes a dense accumulator over the output dimension.
    let vxm_rounds = gb.trace.count_ops(OpKind::Vxm) + gb.trace.count_ops(OpKind::Mxv);
    assert!(vxm_rounds > 0, "GB bfs must go through the product kernels");
    let materializing_products = gb
        .trace
        .ops()
        .filter(|s| s.kind.is_product() && s.materialized_bytes > 0)
        .count() as u64;
    assert_eq!(
        materializing_products, vxm_rounds,
        "each GB product round must materialize an accumulator"
    );
    assert!(gbs.materialized_bytes > 0);

    // The graph API makes no GrB calls and materializes nothing: its
    // trace is worklist loops only.
    assert_eq!(lss.ops, 0, "LS bfs must not issue matrix ops");
    assert_eq!(lss.materialized_bytes, 0, "LS bfs materializes nothing");
    assert!(lss.loops > 0, "LS bfs runs worklist loops");
}

#[test]
fn adaptive_kernels_cut_bfs_materialization() {
    // The sparsity-adaptive kernel layer must strictly reduce the summed
    // accumulator materialization of bfs on both backends — early sparse
    // frontiers scatter into pair lanes instead of a dense accumulator,
    // late rounds pull only the unvisited outputs — while computing the
    // exact same levels as the paper's fixed push strategy.
    use graph_api_study::study_core::traced_run;
    let _guard = PERF_LOCK.lock().unwrap();
    let prev = kernel_mode();
    let p = PreparedGraph::study(StudyGraph::Rmat22, Scale::custom(1.0 / 32.0));
    for system in [System::SuiteSparse, System::GaloisBlas] {
        set_kernel_mode(KernelMode::Push);
        let push = traced_run(system, Problem::Bfs, &p);
        set_kernel_mode(KernelMode::Auto);
        let auto = traced_run(system, Problem::Bfs, &p);
        set_kernel_mode(prev);
        assert_eq!(
            push.output, auto.output,
            "{system:?}: auto must reproduce the fixed strategy's levels"
        );
        let push_bytes = push.trace.summary().materialized_bytes;
        let auto_bytes = auto.trace.summary().materialized_bytes;
        assert!(
            auto_bytes < push_bytes,
            "{system:?}: auto materialized {auto_bytes} bytes, expected strictly \
             less than push's {push_bytes}"
        );
    }
}

#[test]
fn disabled_monitoring_keeps_counters_silent() {
    let _guard = PERF_LOCK.lock().unwrap();
    perfmon::reset();
    perfmon::enable(false);
    let p = PreparedGraph::study(StudyGraph::Rmat22, Scale::custom(1.0 / 128.0));
    let _ = run(System::Lonestar, Problem::Bfs, &p);
    let c = perfmon::snapshot();
    assert_eq!(c.instructions, 0);
    assert_eq!(c.l1_accesses, 0);
}
