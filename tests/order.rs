//! Property tests for the locality-optimizing vertex-reordering tier.
//!
//! Two families of checks:
//!
//! 1. Every order mode produces a true bijection that round-trips: the
//!    inverse permutation applied to the reordered CSR reproduces the
//!    (column-sorted) original graph, and per-vertex value
//!    un-permutation is the exact inverse of position permutation — on
//!    every study-graph shape.
//! 2. The tentpole invariant: a reordered run, un-permuted back to
//!    original vertex ids by the runner, is identical to the
//!    natural-order run — per system, across all four kernel modes and
//!    1/2/8 threads. bfs levels and cc components must match
//!    bit-for-bit; pagerank ranks to the verification tolerance (the
//!    reordered CSR legitimately sums in a different order).

use graph_api_study::galois_rt;
use graph_api_study::graph::order::{self, OrderMode, Permutation};
use graph_api_study::graph::{Scale, StudyGraph};
use graph_api_study::graphblas::ops::{self, KernelMode};
use graph_api_study::study_core::{try_run, PreparedGraph, Problem, ProblemOutput, System};

/// One shape per topology class of Table I, same trio the bench
/// baseline defaults to: scale-free, road, web.
const SHAPES: [StudyGraph; 3] = [
    StudyGraph::Rmat22,
    StudyGraph::RoadUsaW,
    StudyGraph::Indochina04,
];

#[test]
fn permutations_are_bijective_and_round_trip() {
    for which in SHAPES {
        let p = PreparedGraph::study(which, Scale::custom(1.0 / 256.0));
        let g = &p.graph;
        let n = g.num_nodes();
        // `apply` emits sorted columns, so the round-trip target is the
        // column-sorted natural graph, not the raw one.
        let sorted_natural = Permutation::identity(n).apply(g);
        for mode in OrderMode::all() {
            let perm = order::build(mode, g);
            assert_eq!(perm.len(), n, "{which:?} {mode}: permutation length");
            for v in 0..n as u32 {
                assert_eq!(
                    perm.new_id(perm.old_id(v)),
                    v,
                    "{which:?} {mode}: new_id ∘ old_id must be identity at {v}"
                );
                assert_eq!(
                    perm.old_id(perm.new_id(v)),
                    v,
                    "{which:?} {mode}: old_id ∘ new_id must be identity at {v}"
                );
            }
            // Value round-trip: a vector laid out in reordered space,
            // un-permuted, lands every entry back on its original vertex.
            let permuted: Vec<u32> = (0..n as u32).map(|new| perm.old_id(new)).collect();
            let natural: Vec<u32> = (0..n as u32).collect();
            assert_eq!(
                perm.unpermute(&permuted),
                natural,
                "{which:?} {mode}: unpermute must invert the position permutation"
            );
            // Graph round-trip: apply ∘ inverse = identity on the CSR.
            let ordered = perm.apply(g);
            assert_eq!(ordered.num_nodes(), n, "{which:?} {mode}: node count");
            assert_eq!(
                ordered.num_edges(),
                g.num_edges(),
                "{which:?} {mode}: edge count"
            );
            let inverse = Permutation::from_new_of_old(perm.old_of_new().to_vec())
                .expect("the inverse of a bijection is a bijection");
            assert_eq!(
                inverse.apply(&ordered),
                sorted_natural,
                "{which:?} {mode}: inverse.apply(ordered) must reproduce the original"
            );
        }
    }
}

/// Reordered runs must be output-identical to natural runs on every
/// shape × kernel mode × thread count — the end-to-end statement that
/// the runner's source translation and inverse-permutation boundary is
/// airtight no matter which kernel family executes underneath.
#[test]
fn reordered_outputs_match_natural_across_kernels_and_threads() {
    let saved_mode = ops::kernel_mode();
    let saved_threads = galois_rt::threads();
    for which in SHAPES {
        let p = PreparedGraph::study(which, Scale::custom(1.0 / 256.0));
        let ordered: Vec<(OrderMode, PreparedGraph)> =
            [OrderMode::Degree, OrderMode::Hub, OrderMode::Bfs]
                .into_iter()
                .map(|m| (m, p.clone().with_order(m)))
                .collect();
        for mode in [
            KernelMode::Auto,
            KernelMode::Push,
            KernelMode::Pull,
            KernelMode::Bitmap,
        ] {
            ops::set_kernel_mode(mode);
            for threads in [1usize, 2, 8] {
                galois_rt::set_threads(threads);
                for system in System::all() {
                    for problem in [Problem::Bfs, Problem::Cc, Problem::Pr] {
                        let natural = try_run(system, problem, &p).unwrap_or_else(|e| {
                            panic!("{which:?} {system} {problem} natural: {e}")
                        });
                        for (om, po) in &ordered {
                            let got = try_run(system, problem, po).unwrap_or_else(|e| {
                                panic!("{which:?} {system} {problem} {om}: {e}")
                            });
                            let ctx = format!(
                                "{which:?} {system} {problem} order={om} \
                                 kernel={mode:?} threads={threads}"
                            );
                            match (&natural, &got) {
                                (ProblemOutput::Ranks(a), ProblemOutput::Ranks(b)) => {
                                    assert_eq!(a.len(), b.len(), "{ctx}: rank count");
                                    for (v, (x, y)) in a.iter().zip(b).enumerate() {
                                        assert!(
                                            (x - y).abs() <= 1e-9 * x.abs().max(1e-12),
                                            "{ctx}: vertex {v} rank {x} vs {y}"
                                        );
                                    }
                                }
                                (a, b) => assert_eq!(
                                    a, b,
                                    "{ctx}: un-permuted output must be bit-identical"
                                ),
                            }
                        }
                    }
                }
            }
        }
    }
    ops::set_kernel_mode(saved_mode);
    galois_rt::set_threads(saved_threads);
}
