//! Chaos suite: the resilience tentpole end to end.
//!
//! Every test here perturbs process-global state (the fault plan, the
//! memory budget), so the whole suite serializes on one lock and
//! restores the environment-derived configuration afterwards — the
//! final `sweep_survives_env_faults` test is the one CI's chaos matrix
//! drives through `STUDY_FAULTS` / `STUDY_MEM_BUDGET` /
//! `STUDY_CELL_TIMEOUT_MS`.

use graph_api_study::galois_rt::ThreadPool;
use graph_api_study::graph::{DeltaGraph, EdgeBatch};
use graph_api_study::graphblas::ops;
use graph_api_study::study_core::cell::{run_cell, CellStatus};
use graph_api_study::study_core::{
    batch_sources, run_batch_cell, run_incremental_cell, update_batches, verify,
    verify_batch_query, verify_incremental, BatchProblem, IncProblem, PreparedGraph, Problem,
    ProblemOutput, System,
};
use graph_api_study::substrate::fault::{self, FaultPlan};
use std::sync::{Arc, Mutex, OnceLock};

/// Serializes the suite and pins down the fault/budget globals for one
/// test body, restoring the `STUDY_FAULTS` / `STUDY_MEM_BUDGET` view
/// afterwards so test order cannot matter.
fn with_chaos_state<T>(plan: Option<&str>, budget: Option<u64>, f: impl FnOnce() -> T) -> T {
    static LOCK: Mutex<()> = Mutex::new(());
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fault::set_plan(plan.map(|spec| FaultPlan::parse(spec).expect("test plan parses")));
    ops::set_mem_budget(budget);
    let out = f();
    fault::set_plan(fault::plan_from_env());
    ops::set_mem_budget(env_budget());
    out
}

/// The budget `STUDY_MEM_BUDGET` configures (mirrors the lazy resolution
/// in `graphblas::ops::mem_budget`).
fn env_budget() -> Option<u64> {
    std::env::var("STUDY_MEM_BUDGET")
        .ok()
        .filter(|v| !v.trim().is_empty())
        .map(|v| v.trim().parse().expect("STUDY_MEM_BUDGET must be bytes"))
}

/// One shared small study graph (preparation dominates the suite's cost).
fn prepared() -> Arc<PreparedGraph> {
    static GRAPH: OnceLock<Arc<PreparedGraph>> = OnceLock::new();
    GRAPH
        .get_or_init(|| {
            Arc::new(PreparedGraph::study(
                graph_api_study::graph::StudyGraph::Rmat22,
                graph_api_study::graph::Scale::custom(1.0 / 128.0),
            ))
        })
        .clone()
}

/// A 100-vertex path graph: its BFS frontier holds one vertex per round,
/// so the sparse-push accumulator projection stays tiny while the dense
/// and pull projections scale with n — the shape that exercises budget
/// degradation without tripping it.
fn path_graph() -> Arc<PreparedGraph> {
    let n = 100u32;
    let g = graph_api_study::graph::builder::from_edges(
        n as usize,
        (0..n - 1).map(|i| (i, i + 1)),
    )
    .with_random_weights(1_000_000, 7);
    Arc::new(PreparedGraph::from_graph("path100".to_string(), g, 0, 3, 1 << 13))
}

/// Runs the full 18-cell sweep (6 problems x 3 systems, one graph) the
/// way `baseline` does, returning each cell's outcome projection.
fn sweep(p: &Arc<PreparedGraph>) -> Vec<(CellStatus, Option<String>, Option<ProblemOutput>)> {
    let mut out = Vec::new();
    for problem in Problem::all() {
        for system in System::all() {
            let o = run_cell(system, problem, p);
            out.push((o.status, o.error, o.value));
        }
    }
    out
}

#[test]
fn sweep_continues_past_an_injected_cell_failure() {
    let p = prepared();
    let clean = with_chaos_state(None, None, || sweep(&p));
    assert!(
        clean.iter().all(|(s, _, _)| *s == CellStatus::Ok),
        "fault-free sweep must be all ok: {:?}",
        clean.iter().map(|(s, e, _)| (*s, e.clone())).collect::<Vec<_>>()
    );

    // `cell.run:nth=5` victimizes exactly the fifth cell of the sweep.
    let faulted = with_chaos_state(Some("cell.run:nth=5"), None, || sweep(&p));
    assert_eq!(faulted.len(), clean.len(), "sweep must run to completion");
    for (i, ((fs, fe, fv), (_, _, cv))) in faulted.iter().zip(&clean).enumerate() {
        if i == 4 {
            assert_eq!(*fs, CellStatus::Failed, "victim cell is recorded failed");
            let msg = fe.as_deref().unwrap_or_default();
            assert!(msg.contains("injected fault: cell.run"), "got {msg:?}");
            assert!(fv.is_none());
        } else {
            assert_eq!(*fs, CellStatus::Ok, "cell {i} must be untouched");
            assert_eq!(fv, cv, "cell {i} output must match the fault-free run");
        }
    }
}

#[test]
fn seeded_fault_plan_replays_bit_exact() {
    let p = prepared();
    let plan = "seed=7;grb.alloc.accumulator:p=0.1";
    let run = || {
        with_chaos_state(Some(plan), None, || {
            let statuses: Vec<CellStatus> = sweep(&p).into_iter().map(|(s, _, _)| s).collect();
            (statuses, fault::firing_log())
        })
    };
    let (statuses_a, log_a) = run();
    let (statuses_b, log_b) = run();
    assert!(!log_a.is_empty(), "p=0.1 over a full sweep must fire");
    assert_eq!(log_a, log_b, "same seed must reproduce the firing sequence");
    assert_eq!(statuses_a, statuses_b, "and therefore the same victims");
    assert!(
        statuses_a.contains(&CellStatus::Oom),
        "an accumulator fault surfaces as oom: {statuses_a:?}"
    );
    assert!(
        statuses_a.contains(&CellStatus::Ok),
        "the sweep survives past the victims: {statuses_a:?}"
    );
}

#[test]
fn budget_constrained_bfs_degrades_and_still_verifies() {
    let p = path_graph();
    // 64 bytes: room for the one-vertex sparse-push accumulator every
    // round, none for the dense (400 B) or pull (500 B) alternatives.
    let outcome = with_chaos_state(None, Some(64), || {
        let shared = Arc::clone(&p);
        graph_api_study::perfmon::trace::with_trace(move || {
            run_cell(System::GaloisBlas, Problem::Bfs, &shared)
        })
    });
    let (outcome, trace) = outcome;
    assert_eq!(outcome.status, CellStatus::Ok, "error: {:?}", outcome.error);
    let output = outcome.value.expect("ok cell has a value");
    verify::verify(&p, Problem::Bfs, &output).expect("degraded run still verifies");
    let s = trace.summary();
    assert!(s.kernel_push_sparse > 0, "budget must leave sparse push: {s:?}");
    assert_eq!(s.kernel_push_dense, 0, "dense never fits in 64 B: {s:?}");
    assert_eq!(s.kernel_pull, 0, "pull never fits in 64 B: {s:?}");
    assert_eq!(s.kernel_bitmap, 0, "bitmap never fits in 64 B: {s:?}");

    // A budget nothing fits in is an oom outcome, not an abort.
    let starved = with_chaos_state(None, Some(0), || {
        run_cell(System::GaloisBlas, Problem::Bfs, &p)
    });
    assert_eq!(starved.status, CellStatus::Oom);
    assert!(
        starved.error.as_deref().unwrap_or_default().contains("out of memory"),
        "got {:?}",
        starved.error
    );
}

/// Per-query isolation under an injected allocation fault: one lane of a
/// batched sweep ooms, its batch siblings complete bit-identically to
/// the fault-free run.
#[test]
fn batched_lane_fault_never_poisons_siblings() {
    let p = prepared();
    let sources = batch_sources(&p, 6);
    let clean = with_chaos_state(None, None, || {
        run_batch_cell(System::GaloisBlas, BatchProblem::Bfs, &p, &sources)
    });
    assert!(
        clean.iter().all(|o| o.status == CellStatus::Ok),
        "fault-free batch must be all ok"
    );

    // The accumulator fault point fires once per lane advance, so nth=7
    // victimizes exactly one deterministic lane mid-sweep.
    let faulted = with_chaos_state(Some("grb.alloc.accumulator:nth=7"), None, || {
        run_batch_cell(System::GaloisBlas, BatchProblem::Bfs, &p, &sources)
    });
    assert_eq!(faulted.len(), sources.len());
    let victims: Vec<usize> = (0..sources.len())
        .filter(|&j| faulted[j].status != CellStatus::Ok)
        .collect();
    assert_eq!(victims.len(), 1, "exactly one lane is the victim: {victims:?}");
    let v = victims[0];
    assert_eq!(faulted[v].status, CellStatus::Oom, "allocation fault surfaces as oom");
    assert!(
        faulted[v].error.as_deref().unwrap_or_default().contains("out of memory"),
        "got {:?}",
        faulted[v].error
    );
    for j in 0..sources.len() {
        if j == v {
            continue;
        }
        assert_eq!(faulted[j].status, CellStatus::Ok, "sibling {j} must be untouched");
        assert_eq!(
            faulted[j].value, clean[j].value,
            "sibling {j} must match the fault-free run bit for bit"
        );
    }
}

/// Per-query isolation under a memory budget: a batch mixing a trivial
/// query (isolated source, empty frontier projection) with a hub query
/// (one frontier covering every vertex) degrades asymmetrically — the
/// hub lane ooms on its per-column byte guard, the trivial lane
/// completes and still verifies.
#[test]
fn batched_budget_oom_isolates_per_query() {
    // Vertex 0 is isolated; vertex 1 fans out to everything else.
    let n = 200u32;
    let g = graph_api_study::graph::builder::from_edges(
        n as usize,
        (2..n).map(|i| (1u32, i)),
    )
    .with_random_weights(100, 3);
    let p = Arc::new(PreparedGraph::from_graph("hub200".to_string(), g, 0, 3, 1 << 13));
    let sources = [0u32, 1];

    let outcomes = with_chaos_state(None, Some(64), || {
        run_batch_cell(System::GaloisBlas, BatchProblem::Bfs, &p, &sources)
    });
    assert_eq!(outcomes[0].status, CellStatus::Ok, "error: {:?}", outcomes[0].error);
    verify_batch_query(
        &p,
        BatchProblem::Bfs,
        sources[0],
        outcomes[0].value.as_ref().expect("ok query has a value"),
    )
    .expect("surviving query still verifies");
    assert_eq!(
        outcomes[1].status,
        CellStatus::Oom,
        "hub frontier cannot fit any kernel in 64 B: {:?}",
        outcomes[1].error
    );
    assert!(outcomes[1].value.is_none());
}

/// A crash injected between building the fresh snapshot and swapping it
/// in (`delta.compact.commit`) must leave the pre-compaction state fully
/// readable: the old snapshot, every layer, the merged view and a later
/// retry all keep working.
#[test]
fn compaction_crash_leaves_the_old_snapshot_readable() {
    with_chaos_state(Some("delta.compact.commit:nth=1"), None, || {
        let g = graph_api_study::graph::builder::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let mut d = DeltaGraph::with_threshold(g.clone(), 0);
        d.apply(&EdgeBatch::new().insert(0, 3).delete(1, 2)).unwrap();
        let merged_before: Vec<Vec<(u32, u32)>> = (0..4)
            .map(|v| d.neighbors(v).collect())
            .collect();

        let hit = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| d.compact()));
        let payload = hit.expect_err("first compaction must hit the injected crash");
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("injected fault: delta.compact.commit"), "got {msg:?}");

        // Pre-compaction state is intact and answers queries correctly.
        assert_eq!(d.snapshot(), &g, "old snapshot untouched by the crash");
        assert_eq!(d.layer_count(), 1, "the layer survived");
        assert_eq!(d.compactions(), 0, "no compaction was recorded");
        let merged_after: Vec<Vec<(u32, u32)>> = (0..4)
            .map(|v| d.neighbors(v).collect())
            .collect();
        assert_eq!(merged_after, merged_before, "merged view unchanged");
        assert_eq!(merged_after[0], vec![(1, 1), (3, 1)]);
        assert_eq!(merged_after[1], Vec::new(), "delete still applied");

        // The nth=1 trigger is spent; the retry folds cleanly.
        d.compact().expect("second compaction succeeds");
        assert_eq!(d.layer_count(), 0);
        assert_eq!(d.compactions(), 1);
        assert_eq!(d.snapshot().num_edges(), 3);
    });
}

/// A compaction crash inside an incremental cell costs that cell —
/// recorded `failed` with the injected message — and the next cell of
/// the sweep completes and verifies as if nothing happened.
#[test]
fn compaction_crash_fails_the_cell_not_the_sweep() {
    let p = prepared();
    let updates = update_batches(&p.graph, 2, 12, 11);
    with_chaos_state(Some("delta.compact.commit:nth=1"), None, || {
        // The victim: its final forced compaction is the first commit.
        let victim = run_incremental_cell(System::Lonestar, IncProblem::Bfs, &p, &updates);
        assert_eq!(victim.status, CellStatus::Failed, "crash is contained to the cell");
        let msg = victim.error.as_deref().unwrap_or_default();
        assert!(msg.contains("injected fault: delta.compact.commit"), "got {msg:?}");
        assert!(victim.value.is_none());

        // The trigger is spent; the rest of the sweep is healthy.
        let next = run_incremental_cell(System::Lonestar, IncProblem::Cc, &p, &updates);
        assert!(next.is_ok(), "sibling cell must survive: {:?}", next.error);
        verify_incremental(&p, IncProblem::Cc, &next.value.expect("ok cell has a value"))
            .expect("sibling cell still verifies");
    });
}

/// Seeded probabilistic compaction faults replay bit-exactly: the same
/// plan over the same incremental sweep fires at the same hit indices
/// and fells the same cells.
#[test]
fn seeded_compaction_faults_replay_bit_exact() {
    let p = prepared();
    let updates = update_batches(&p.graph, 3, 16, 13);
    let plan = "seed=3;delta.compact.alloc:p=0.5";
    let run = || {
        with_chaos_state(Some(plan), None, || {
            let mut statuses = Vec::new();
            for problem in IncProblem::all() {
                for system in System::all() {
                    statuses.push(run_incremental_cell(system, problem, &p, &updates).status);
                }
            }
            (statuses, graph_api_study::substrate::fault::firing_log())
        })
    };
    let (statuses_a, log_a) = run();
    let (statuses_b, log_b) = run();
    assert!(!log_a.is_empty(), "p=0.5 over nine compacting cells must fire");
    assert_eq!(log_a, log_b, "same seed must reproduce the firing sequence");
    assert_eq!(statuses_a, statuses_b, "and therefore the same victims");
    assert!(
        statuses_a.contains(&CellStatus::Failed),
        "an alloc fault surfaces as a failed cell: {statuses_a:?}"
    );
    assert!(
        statuses_a.contains(&CellStatus::Ok),
        "the sweep survives past the victims: {statuses_a:?}"
    );
}

#[test]
fn pool_survives_an_injected_worker_panic() {
    with_chaos_state(Some("pool.worker:nth=1"), None, || {
        let pool = ThreadPool::new(2);
        let hit = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.region(2, |_| {});
        }));
        let payload = hit.expect_err("first region hit must rethrow the injected panic");
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("injected fault: pool.worker"), "got {msg:?}");

        // The nth=1 trigger is spent; the pool must be fully reusable.
        let counter = std::sync::atomic::AtomicUsize::new(0);
        pool.region(2, |_| {
            counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(counter.into_inner(), 2, "both participants run after recovery");
    });
}

// ---------------------------------------------------------------------------
// Service legs: fault containment in the long-lived server
// ---------------------------------------------------------------------------

use graph_api_study::service::protocol::{RunRequest, Status};
use graph_api_study::service::{
    AdmissionConfig, Catalog, Client, RetryPolicy, Service, ServiceConfig, ServiceHandle,
};

/// An in-process server over the shared chaos graph, with explicit
/// (env-independent) limits.
fn start_service(capacity: u32, default_deadline_ms: u32) -> ServiceHandle {
    let catalog = Catalog::new();
    catalog.insert(PreparedGraph::clone(&prepared()));
    Service::start(
        ServiceConfig {
            addr: "127.0.0.1:0".to_string(),
            admission: AdmissionConfig {
                capacity,
                queue_cap: (capacity * 2).max(4),
            },
            default_deadline_ms,
        },
        catalog,
    )
    .expect("bind an ephemeral port")
}

fn bfs_request() -> RunRequest {
    RunRequest {
        graph: prepared().name.clone(),
        system: System::Lonestar,
        problem: Problem::Bfs,
        deadline_ms: 0,
        verify: true,
    }
}

/// An injected job panic (`svc.job.panic`) costs exactly the victim
/// request: it reports `failed` with the injected message, every sibling
/// request completes ok and verified with the clean run's digest, the
/// process survives, and the drain is clean.
#[test]
fn service_contains_an_injected_job_panic() {
    let clean_digest = with_chaos_state(None, None, || {
        let handle = start_service(4, 0);
        let mut c = Client::connect(handle.addr(), RetryPolicy::none(), 5).unwrap();
        let r = c.run(&bfs_request()).expect("transport");
        assert_eq!(r.status, Status::Ok, "{}", r.error);
        c.shutdown().expect("shutdown");
        assert!(handle.join().drained_clean);
        r.digest
    });

    with_chaos_state(Some("svc.job.panic:nth=2"), None, || {
        let handle = start_service(4, 0);
        let mut c = Client::connect(handle.addr(), RetryPolicy::none(), 5).unwrap();
        let mut statuses = Vec::new();
        for i in 0..4 {
            let r = c.run(&bfs_request()).expect("transport");
            statuses.push(r.status);
            if i == 1 {
                assert_eq!(r.status, Status::Failed, "victim is the second job");
                assert!(
                    r.error.contains("injected fault: svc.job.panic"),
                    "got {:?}",
                    r.error
                );
            } else {
                assert_eq!(r.status, Status::Ok, "sibling {i}: {}", r.error);
                assert!(r.verified, "sibling {i} must verify");
                assert_eq!(r.digest, clean_digest, "sibling {i} output diverged");
            }
        }
        c.shutdown().expect("shutdown after a contained panic");
        let report = handle.join();
        assert!(report.drained_clean, "drain must be clean: {report:?}");
        assert_eq!(report.served, 4);
        assert_eq!(report.contained_failures, 1);
    });
}

/// An injected hang (`svc.job.hang`) under a short server deadline is a
/// client-visible `timeout`, not a wedged server: the next request on
/// the same connection completes normally.
#[test]
fn service_deadline_trips_on_an_injected_hang() {
    with_chaos_state(Some("svc.job.hang:nth=1"), None, || {
        let handle = start_service(4, 250);
        let mut c = Client::connect(handle.addr(), RetryPolicy::none(), 6).unwrap();
        let victim = c.run(&bfs_request()).expect("transport");
        assert_eq!(
            victim.status,
            Status::Timeout,
            "hang under a 250 ms deadline: {}",
            victim.error
        );
        assert!(!victim.retryable, "a deadline trip is deterministic");
        // The trigger is spent; the server still serves.
        let next = c.run(&bfs_request()).expect("transport");
        assert_eq!(next.status, Status::Ok, "{}", next.error);
        assert!(next.verified);
        c.shutdown().expect("shutdown");
        let report = handle.join();
        assert!(report.drained_clean);
        assert_eq!(report.contained_failures, 1);
    });
}

/// Zero admission capacity mid-traffic sheds with retryable rejections
/// while the connection, catalog and process stay healthy; restoring
/// capacity resumes service with no residue.
#[test]
fn service_zero_budget_mid_traffic_sheds_and_recovers() {
    with_chaos_state(None, None, || {
        let handle = start_service(4, 0);
        let mut c = Client::connect(handle.addr(), RetryPolicy::none(), 8).unwrap();
        let r = c.run(&bfs_request()).expect("transport");
        assert_eq!(r.status, Status::Ok, "{}", r.error);

        handle.set_capacity(0);
        for _ in 0..3 {
            let r = c.run(&bfs_request()).expect("transport");
            assert_eq!(r.status, Status::Rejected);
            assert!(r.retryable, "budget-class shed must be retryable");
        }

        handle.set_capacity(4);
        let r = c.run(&bfs_request()).expect("transport");
        assert_eq!(r.status, Status::Ok, "recovery failed: {}", r.error);
        assert!(r.verified);
        c.shutdown().expect("shutdown");
        let report = handle.join();
        assert!(report.drained_clean);
        assert_eq!(report.rejected, 3);
    });
}

/// A seeded `svc.admit` plan over a serial request stream replays
/// bit-exactly: the same firing log, the same per-request status
/// sequence, and the same client retry count on both runs.
#[test]
fn service_seeded_admission_faults_replay_bit_exact() {
    let plan = "seed=11;svc.admit:p=0.4";
    let run = || {
        with_chaos_state(Some(plan), None, || {
            let handle = start_service(4, 0);
            let mut c = Client::connect(
                handle.addr(),
                RetryPolicy {
                    max_retries: 2,
                    base: std::time::Duration::from_millis(1),
                    cap: std::time::Duration::from_millis(4),
                },
                11,
            )
            .unwrap();
            let statuses: Vec<Status> = (0..6)
                .map(|_| c.run(&bfs_request()).expect("transport").status)
                .collect();
            let retries = c.retries_used();
            c.shutdown().expect("shutdown");
            let report = handle.join();
            assert!(report.drained_clean);
            (statuses, retries, fault::firing_log())
        })
    };
    let (statuses_a, retries_a, log_a) = run();
    let (statuses_b, retries_b, log_b) = run();
    assert!(!log_a.is_empty(), "p=0.4 over six admissions must fire");
    assert_eq!(log_a, log_b, "same seed must reproduce the firing sequence");
    assert_eq!(statuses_a, statuses_b, "and therefore the same dispositions");
    assert_eq!(retries_a, retries_b, "and the same retry schedule");
    assert!(
        statuses_a.contains(&Status::Ok),
        "retries ride out transient rejections: {statuses_a:?}"
    );
}

/// The CI chaos matrix entry point: whatever `STUDY_FAULTS`,
/// `STUDY_MEM_BUDGET` and `STUDY_CELL_TIMEOUT_MS` say, a sweep must run
/// to completion with a coherent outcome per cell, and cells that do
/// complete must still verify.
#[test]
fn sweep_survives_env_faults() {
    let p = prepared();
    let outcomes = with_chaos_state(None, None, || {
        // `with_chaos_state` restored nothing yet — install the
        // environment's own plan and budget explicitly.
        fault::set_plan(fault::plan_from_env());
        ops::set_mem_budget(env_budget());
        sweep(&p)
    });
    assert_eq!(outcomes.len(), Problem::all().len() * System::all().len());
    let mut cell = 0usize;
    for problem in Problem::all() {
        for system in System::all() {
            let (status, error, value) = &outcomes[cell];
            cell += 1;
            match status {
                CellStatus::Ok => {
                    assert!(error.is_none(), "{problem}/{system}: ok cell with error");
                    let out = value.as_ref().expect("ok cell has a value");
                    verify::verify(&p, problem, out)
                        .unwrap_or_else(|e| panic!("{problem}/{system}: {e}"));
                }
                CellStatus::Failed | CellStatus::Timeout | CellStatus::Oom => {
                    assert!(
                        error.is_some(),
                        "{problem}/{system}: non-ok cell must record its error"
                    );
                    assert!(value.is_none());
                }
            }
        }
    }
    let fired = fault::firing_log();
    if fault::plan_spec().is_none() && env_budget().is_none() {
        assert!(
            outcomes.iter().all(|(s, _, _)| *s == CellStatus::Ok),
            "no faults, no budget: the sweep must be all ok"
        );
        assert!(fired.is_empty());
    }
}
