//! Integration: every Figure 3 variant is correct and algorithm metadata
//! (rounds, materialization) exhibits the paper's qualitative claims.

use graph_api_study::graph::transform::{sort_by_degree, symmetrize};
use graph_api_study::graph::{Scale, StudyGraph};
use graph_api_study::graphblas::GaloisRuntime;
use graph_api_study::study_core::runner::run_variant;
use graph_api_study::study_core::{verify, PreparedGraph, Problem, Variant};
use graph_api_study::{lagraph, lonestar};

#[test]
fn every_variant_verifies_on_two_shapes() {
    for which in [StudyGraph::RoadUsa, StudyGraph::Indochina04] {
        let p = PreparedGraph::study(which, Scale::custom(1.0 / 128.0));
        for problem in [Problem::Pr, Problem::Tc, Problem::Cc, Problem::Sssp] {
            for &variant in Variant::panel(problem) {
                let out = run_variant(variant, &p);
                verify::verify(&p, problem, &out).unwrap_or_else(|e| {
                    panic!("{} {problem} on {}: {e}", variant.name(), p.name)
                });
            }
        }
    }
}

#[test]
fn ktruss_gauss_seidel_needs_no_more_rounds_than_jacobi() {
    // The paper: LAGraph's Jacobi-style removal executes ~1.6x more
    // rounds than Lonestar's immediately-visible removal.
    let g = symmetrize(&graph_api_study::graph::gen::web_crawl(6, 80, 9));
    let k = 5;
    let ls = lonestar::ktruss::ktruss(&g, k);
    let gb = lagraph::ktruss::ktruss(&g, k, GaloisRuntime).unwrap();
    assert_eq!(ls.edges_remaining, gb.edges_remaining);
    assert!(
        ls.rounds <= gb.rounds,
        "Gauss-Seidel {} rounds vs Jacobi {}",
        ls.rounds,
        gb.rounds
    );
}

#[test]
fn matrix_tc_materializes_graph_tc_does_not() {
    let g = symmetrize(&graph_api_study::graph::gen::community(400, 15, 4).into_unweighted());
    let gb = lagraph::tc::tc_sandia_dot(&g, GaloisRuntime).unwrap();
    assert!(gb.triangles > 0);
    assert!(
        gb.materialized_nvals > 0,
        "SandiaDot must materialize per-edge counts"
    );
    // The graph API returns just the number: no intermediate exists.
    let (sorted, _) = sort_by_degree(&g);
    assert_eq!(lonestar::tc::tc(&sorted), gb.triangles);
}

#[test]
fn bulk_sssp_rounds_grow_with_diameter() {
    // Round-based execution is what costs the matrix API on
    // high-diameter graphs (paper Figure 3(d)).
    let small = graph_api_study::graph::gen::grid_road(20, 10, 1);
    let large = graph_api_study::graph::gen::grid_road(80, 10, 1);
    let a = lagraph::sssp::sssp_delta_stepping(&small, 0, 1 << 13, GaloisRuntime).unwrap();
    let b = lagraph::sssp::sssp_delta_stepping(&large, 0, 1 << 13, GaloisRuntime).unwrap();
    assert!(
        b.rounds > a.rounds,
        "larger diameter must need more bulk rounds ({} vs {})",
        b.rounds,
        a.rounds
    );
}

#[test]
fn betweenness_agrees_across_apis_and_reference() {
    use graph_api_study::study_core::reference;
    let g = graph_api_study::graph::gen::rmat(8, 8, graph_api_study::graph::gen::RmatParams::default(), 6);
    let sources: Vec<u32> = vec![0, 3, g.max_out_degree_node()];
    let expected = reference::betweenness(&g, &sources);
    let ls = lonestar::bc::betweenness(&g, &sources);
    let gb = lagraph::bc::betweenness(&g, &sources, GaloisRuntime).unwrap();
    for v in 0..g.num_nodes() {
        assert!(
            (ls[v] - expected[v]).abs() < 1e-6,
            "ls bc mismatch at {v}: {} vs {}",
            ls[v],
            expected[v]
        );
        assert!(
            (gb.centrality[v] - expected[v]).abs() < 1e-6,
            "gb bc mismatch at {v}: {} vs {}",
            gb.centrality[v],
            expected[v]
        );
    }
    assert!(gb.materialized_vectors > 0, "matrix bc keeps level history");
}

#[test]
fn direction_optimized_bfs_is_correct_on_study_shapes() {
    for which in [StudyGraph::Twitter40, StudyGraph::RoadUsaW] {
        let p = PreparedGraph::study(which, Scale::custom(1.0 / 128.0));
        let expected = graph_api_study::study_core::reference::bfs_levels(&p.graph, p.source);
        let ls = lonestar::bfs::bfs_direction_optimizing(&p.graph, &p.transpose, p.source);
        assert_eq!(ls.level, expected, "ls dirop on {}", p.name);
        let gb =
            lagraph::bfs::bfs_push_pull(&p.graph, &p.transpose, p.source, GaloisRuntime).unwrap();
        assert_eq!(gb.level, expected, "gb push-pull on {}", p.name);
    }
}

#[test]
fn parent_bfs_is_valid_on_both_apis() {
    use graph_api_study::study_core::verify::verify_bfs_parents;
    for which in [StudyGraph::Rmat22, StudyGraph::RoadUsaW, StudyGraph::Uk07] {
        let p = PreparedGraph::study(which, Scale::custom(1.0 / 128.0));
        let ls = lonestar::bfs::bfs_parent(&p.graph, p.source);
        verify_bfs_parents(&p.graph, p.source, &ls)
            .unwrap_or_else(|e| panic!("ls parents on {}: {e}", p.name));
        let gb = lagraph::bfs::bfs_parent(&p.graph, p.source, GaloisRuntime).unwrap();
        verify_bfs_parents(&p.graph, p.source, &gb)
            .unwrap_or_else(|e| panic!("gb parents on {}: {e}", p.name));
    }
}

#[test]
fn parent_verifier_rejects_bad_trees() {
    use graph_api_study::study_core::verify::verify_bfs_parents;
    let g = graph_api_study::graph::builder::from_edges(3, [(0, 1), (1, 2)]);
    assert!(verify_bfs_parents(&g, 0, &[0, 0, 1]).is_ok());
    assert!(verify_bfs_parents(&g, 0, &[0, 0, 0]).is_err(), "0 is not 2's parent");
    assert!(verify_bfs_parents(&g, 0, &[1, 0, 1]).is_err(), "bad source parent");
    assert!(verify_bfs_parents(&g, 0, &[0, 0]).is_err(), "length mismatch");
}

#[test]
fn afforest_beats_sv_on_work() {
    // Afforest's sampling processes far fewer edges; at minimum the
    // results agree, which is what this integration check pins down.
    let g = symmetrize(&graph_api_study::graph::gen::preferential_attachment(
        3000, 5, false, 8,
    ));
    let ls = lonestar::cc::afforest(&g, 2);
    let sv = lonestar::cc::shiloach_vishkin(&g);
    assert_eq!(ls.component, sv.component);
}
