#!/usr/bin/env python3
"""Hermetic-build guard: fail if any Cargo.toml declares a registry dependency.

Every dependency in this workspace must be a path or workspace reference to
a sibling crate (see the hermetic-build policy in DESIGN.md). This script
scans all manifests and reports any entry that names a version requirement,
a git URL, or an alternative registry — the forms that would make cargo
reach for the network.

Usage: python3 scripts/check_hermetic.py [repo_root]
Exits non-zero if an offending dependency is found.
"""

import re
import sys
from pathlib import Path

DEP_SECTION = re.compile(r"dependencies")
SECTION = re.compile(r"\s*\[(.+)\]\s*$")
# `version = "..."` (also inside inline tables), `git = "..."`, `registry = "..."`
FORBIDDEN_KEY = re.compile(r'\b(version|git|registry)\s*=\s*"')
# Bare `name = "1.2"` shorthand: the value is a version requirement string.
BARE_VERSION = re.compile(r'^\s*[\w-]+\s*=\s*"')


def scan(manifest: Path) -> list[str]:
    offending = []
    section = None
    for raw in manifest.read_text().splitlines():
        line = raw.split("#")[0].rstrip()
        m = SECTION.match(line)
        if m:
            section = m.group(1)
            continue
        if section is None or not DEP_SECTION.search(section):
            continue
        if "=" not in line:
            continue
        if FORBIDDEN_KEY.search(line) or BARE_VERSION.match(line):
            offending.append(f"{manifest}: [{section}] {line.strip()}")
    return offending


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    manifests = sorted(
        p for p in root.rglob("Cargo.toml") if "target" not in p.parts
    )
    if not manifests:
        print(f"no Cargo.toml found under {root}", file=sys.stderr)
        return 2
    offending = [o for m in manifests for o in scan(m)]
    for o in offending:
        print(o)
    if offending:
        print(
            f"\n{len(offending)} registry dependenc"
            f"{'y' if len(offending) == 1 else 'ies'} found; the workspace "
            "must stay hermetic (path-only deps, see DESIGN.md).",
            file=sys.stderr,
        )
        return 1
    print(f"{len(manifests)} manifests clean: no registry dependencies.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
