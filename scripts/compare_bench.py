#!/usr/bin/env python3
"""Diff two BENCH_baseline.json files and flag wall-time regressions.

Usage: python3 scripts/compare_bench.py BASELINE CURRENT [--threshold PCT]
                                        [--fail-on-regression]
                                        [--scaling-gate]
                                        [--expect-schema v1|...|v9]

Both files must carry the ``schema`` string selected by
``--expect-schema`` (default v9, "graph-api-study/bench-baseline/v9");
a mismatch is a hard failure (exit 2) because the cells are not
comparable across schema revisions. The two files must also have been
generated at the same ``batch_width`` and ``delta_batch`` — batched
cells' wall times scale with queries per cell, and the streaming cells'
throughput/staleness numbers scale with the update-batch size, so a
differing width or delta size is refused with exit 2 exactly like a
schema mismatch. Cells are keyed by (problem, system, graph, threads,
order). For every cell present in both files the tracing-off ``wall_s``
is compared; a slowdown beyond the threshold (default 20%) is reported
as a regression.

v9 adds the vertex-order dimension. The header ``order_mode`` (the
ambient ``STUDY_ORDER`` the file was generated under) must match
between the two files — refused with exit 2 otherwise, since a
reordered CSR changes every locality-sensitive wall time. Cells carry
``order`` (``natural`` for the untouched static sweep, ``degree`` /
``hub`` / ``bfs`` for the order-dimension cells) and it participates in
the cell key. Reordering is strictly opt-in, so a *natural*-order cell
whose deterministic trace counters drift between the files is a hard
ERROR (exit 1), not a warning: the reordering tier has no business
perturbing the untouched path. The one carve-out is LS ``passes`` /
``product_rounds``, which count async worklist loops that scheduling
legitimately perturbs (ktruss peel rounds flip between 4 and 5 at 4
threads run to run) — those stay warnings on LS cells, while
``materialized_bytes`` gates hard on every system. Ordered cells keep
warning-level drift reporting (their counters legitimately move as
orders evolve). The
anti-scaling self-check only considers natural cells — order-dimension
cells run at a single thread count.

v7 adds the thread-scaling dimension. A ``thread_sweep`` or header
``threads`` mismatch between the two files is refused with exit 2 —
wall times measured at different thread counts are never comparable,
and silently diffing a 1-thread file against an 8-thread file is
exactly the mistake this gate exists to catch. With ``--scaling-gate``
the CURRENT file is additionally self-checked for anti-scaling: any
static cell whose highest-sweep wall time exceeds its 1-thread wall
time is a hard ERROR (exit 1), provided the 1-thread wall is above the
timer-noise floor (sub-``MIN_DELTA_S`` cells are pure jitter at any
thread count). The gate stands down (with a note) when the CURRENT
header's ``host_cpus`` is below the sweep top: an oversubscribed sweep
measures scheduler overhead, not scaling, and failing it would punish
the hardware rather than the code.

v6 adds the streaming cells (``bfs-inc`` / ``cc-inc`` / ``pr-inc``),
each carrying ``edges_absorbed_per_s`` / ``staleness_s`` /
``compactions`` and a ``verified`` flag checked against a from-scratch
recompute on the compacted snapshot — the existing unverified-cell gate
covers them with no special casing.

v5 adds the batched query cells (``bfs-batch`` / ``ppr-batch`` /
``sssp-batch``): each carries a ``queries`` array with one
``status`` + ``verified`` entry per source. A query that was ok in the
baseline but non-ok now, or that completes unverified, is a hard ERROR
(one query's regression must be visible even when its batch siblings
still pass).

v3 cells carry a ``status`` (``ok|failed|timeout|oom``; absent means
``ok``). A cell that was ok in the baseline but non-ok in the current
run is a hard ERROR — the resilient runner kept the sweep alive, but the
cell itself regressed from working to broken. Non-ok current cells skip
the verification / wall / counter checks (there is nothing to compare);
a non-ok baseline cell that now completes is reported as a note
suggesting a re-baseline.

By default regressions only warn (exit 0) — CI wall times on shared
runners are too noisy for a hard gate — but ``--fail-on-regression``
turns them into exit 1 for local use. Missing cells, unverified cells,
and trace-counter drifts (passes / product_rounds / materialized_bytes,
which are deterministic and *should* be stable) are always reported.

Materialization is additionally gated for the frontier problems: a
``materialized_bytes`` RISE on any bfs or sssp cell is a hard ERROR
(exit 1) — the sparsity-adaptive kernel layer exists precisely to keep
those cells' accumulator footprints from creeping back up. A DROP on
those cells is an accepted improvement and reported as a note.

v4 additionally gates allocation churn on the workspace-recycled
problems: an ``alloc_bytes`` rise beyond 10% + 4 KiB headroom on any
pr, tc or ktruss cell is a hard ERROR (exit 1) — the epoch-recycled
workspaces exist precisely to keep per-call allocation out of those
hot loops. The gate only applies when both files ran with the same
``workspace_mode``; a drop is reported as a note.

v8 adds two ``service`` cells per run (``service-cheap`` and
``service-mixed``): a long-lived in-process server is driven with the
mixed client workload and the cell records request dispositions
(ok / failed / timeout / oom / rejected), qps and client-observed
latency percentiles. Any served request regressing from an all-ok
baseline to a failed, timeout or oom disposition is a hard ERROR
(exit 1), as is a server that fails to drain cleanly — the service
layer exists precisely to fault-contain concurrent jobs without
taking their siblings down. Latency percentiles and qps are reported,
not gated: they track machine load, not behaviour.

Exit codes: 0 ok / warnings only, 1 regression with --fail-on-regression
or malformed input or a frontier materialization rise or an alloc churn
rise on a workspace-gated cell or an ok->non-ok status regression (cell,
per-query or served-request) or an unclean service drain or an
anti-scaling cell under --scaling-gate or a natural-order counter
drift, 2 schema, batch_width, delta_batch, thread_sweep, threads or
order_mode mismatch.
"""

import json
import sys

SCHEMAS = {
    "v1": "graph-api-study/bench-baseline/v1",
    "v2": "graph-api-study/bench-baseline/v2",
    "v3": "graph-api-study/bench-baseline/v3",
    "v4": "graph-api-study/bench-baseline/v4",
    "v5": "graph-api-study/bench-baseline/v5",
    "v6": "graph-api-study/bench-baseline/v6",
    "v7": "graph-api-study/bench-baseline/v7",
    "v8": "graph-api-study/bench-baseline/v8",
    "v9": "graph-api-study/bench-baseline/v9",
}
DEFAULT_SCHEMA = "v9"
# Trace counters that are deterministic for a fixed (scale, graph, problem,
# system) — a drift here means algorithmic behaviour changed, not noise.
STABLE_COUNTERS = ("passes", "product_rounds", "materialized_bytes")
# Problems whose materialized_bytes must never rise: their frontiers are
# what the adaptive SpMV kernels compact.
MATERIALIZATION_GATED = ("bfs", "sssp")
# Problems whose alloc_bytes (transient allocation churn) must never rise
# past the headroom below: their kernels run out of recycled workspaces.
ALLOC_GATED = ("pr", "tc", "ktruss")
# Allow 10% relative + 4 KiB absolute slack before calling an alloc churn
# delta a regression (tiny cells jitter by an allocator bucket or two).
ALLOC_HEADROOM_REL = 0.10
ALLOC_HEADROOM_ABS = 4096
# Ignore relative slowdowns below this absolute delta: sub-millisecond
# cells are pure timer noise at any percentage.
MIN_DELTA_S = 0.005


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(1)
    if not isinstance(doc, dict) or "schema" not in doc or "cells" not in doc:
        print(f"error: {path} is not a bench-baseline document", file=sys.stderr)
        sys.exit(1)
    return doc


def key(cell):
    # v7 cells carry the thread count they ran at; a 1-thread wall and an
    # 8-thread wall for the same (problem, system, graph) are distinct
    # measurements and must never be diffed against each other. Pre-v7
    # cells have no "threads" field; str() keeps the key sortable either
    # way. v9 cells additionally carry the vertex order they ran under —
    # a degree-ordered wall and a natural wall are likewise distinct
    # measurements; pre-v9 cells default to "natural", which is what
    # they were.
    return (
        cell["problem"],
        cell["system"],
        cell["graph"],
        str(cell.get("threads", "")),
        cell.get("order", "natural"),
    )


def main(argv):
    args = [a for a in argv if not a.startswith("--")]
    fail_on_regression = "--fail-on-regression" in argv
    scaling_gate = "--scaling-gate" in argv
    threshold = 20.0
    expect = DEFAULT_SCHEMA
    if "--threshold" in argv:
        i = argv.index("--threshold")
        try:
            threshold = float(argv[i + 1])
            args.remove(argv[i + 1])
        except (IndexError, ValueError):
            print("error: --threshold needs a number", file=sys.stderr)
            return 1
    if "--expect-schema" in argv:
        i = argv.index("--expect-schema")
        try:
            expect = argv[i + 1]
            args.remove(argv[i + 1])
        except IndexError:
            expect = ""
        if expect not in SCHEMAS:
            print(
                f"error: --expect-schema must be one of {sorted(SCHEMAS)}",
                file=sys.stderr,
            )
            return 1
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 1
    schema = SCHEMAS[expect]
    base_path, cur_path = args
    base, cur = load(base_path), load(cur_path)

    if base["schema"] != schema or cur["schema"] != schema:
        print(
            f"error: schema mismatch: {base_path} has {base['schema']!r}, "
            f"{cur_path} has {cur['schema']!r}, expected {schema!r}",
            file=sys.stderr,
        )
        return 2

    if base.get("batch_width") != cur.get("batch_width"):
        print(
            f"error: batch_width mismatch: {base_path} has "
            f"{base.get('batch_width')!r}, {cur_path} has "
            f"{cur.get('batch_width')!r}; batched cells are not comparable "
            "across widths (regenerate with the same STUDY_BATCH)",
            file=sys.stderr,
        )
        return 2

    if base.get("delta_batch") != cur.get("delta_batch"):
        print(
            f"error: delta_batch mismatch: {base_path} has "
            f"{base.get('delta_batch')!r}, {cur_path} has "
            f"{cur.get('delta_batch')!r}; streaming cells are not comparable "
            "across update-batch sizes (regenerate with the same STUDY_DELTA)",
            file=sys.stderr,
        )
        return 2

    # Refuse cross-thread comparisons outright: wall times measured at
    # different thread counts (or over different sweeps) are never
    # comparable, and keying alone would silently report every cell as
    # "missing" instead of naming the real problem.
    for field, hint in (("thread_sweep", "sweep"), ("threads", "count")):
        if base.get(field) != cur.get(field):
            print(
                f"error: {field} mismatch: {base_path} has "
                f"{base.get(field)!r}, {cur_path} has {cur.get(field)!r}; "
                f"wall times are not comparable across thread {hint}s "
                "(regenerate both files on the same sweep)",
                file=sys.stderr,
            )
            return 2

    # Refuse cross-order comparisons the same way: a file generated
    # under STUDY_ORDER=hub ran every cell on a reordered CSR, and its
    # "natural"-labelled comparisons would be meaningless. Pre-v9 files
    # carry no order_mode header and were always natural.
    if base.get("order_mode", "natural") != cur.get("order_mode", "natural"):
        print(
            f"error: order_mode mismatch: {base_path} has "
            f"{base.get('order_mode', 'natural')!r}, {cur_path} has "
            f"{cur.get('order_mode', 'natural')!r}; cells are not comparable "
            "across ambient vertex orders (regenerate with the same "
            "STUDY_ORDER)",
            file=sys.stderr,
        )
        return 2

    base_cells = {key(c): c for c in base["cells"]}
    cur_cells = {key(c): c for c in cur["cells"]}
    comparable = base.get("scale") == cur.get("scale")
    if not comparable:
        print(
            f"note: scales differ ({base.get('scale')} vs {cur.get('scale')}); "
            "wall times and counters are not comparable, checking coverage only"
        )
    if base.get("kernel_mode") != cur.get("kernel_mode"):
        print(
            f"note: kernel modes differ ({base.get('kernel_mode')} vs "
            f"{cur.get('kernel_mode')}); counter drifts are expected"
        )
    same_workspace = base.get("workspace_mode") == cur.get("workspace_mode")
    if not same_workspace:
        print(
            f"note: workspace modes differ ({base.get('workspace_mode')} vs "
            f"{cur.get('workspace_mode')}); alloc_bytes is not gated"
        )

    regressions, warnings, errors, notes = [], [], [], []

    if scaling_gate:
        sweep_top = max(cur.get("thread_sweep") or [1])
        host = cur.get("host_cpus")
        if isinstance(host, int) and host < sweep_top:
            notes.append(
                f"scaling gate stood down: host has {host} cpu(s) but the "
                f"sweep tops out at {sweep_top} threads — oversubscribed "
                "walls measure scheduler overhead, not scaling"
            )
            scaling_gate = False
    if scaling_gate:
        # Self-check CURRENT for anti-scaling: a static cell family whose
        # highest-sweep wall exceeds its 1-thread wall got *slower* by
        # adding threads — the raw-speed tier's parallel paths must at
        # worst break even. Only swept families (both a 1t and a >1t cell)
        # participate; batched/streaming cells run at a single thread
        # count. 1t walls at or below the timer-noise floor are skipped:
        # sub-millisecond cells are jitter at any thread count.
        families = {}
        for c in cur["cells"]:
            t = c.get("threads")
            if not isinstance(t, int) or c.get("status", "ok") != "ok":
                continue
            if c.get("order", "natural") != "natural":
                # Order-dimension cells run only at the sweep maximum;
                # mixing them into a family would overwrite the natural
                # top-thread wall with a reordered one.
                continue
            fam = (c["problem"], c["system"], c["graph"])
            families.setdefault(fam, {})[t] = c["wall_s"]
        for fam in sorted(families):
            walls = families[fam]
            if 1 not in walls or len(walls) < 2:
                continue
            top = max(walls)
            w1, wt = walls[1], walls[top]
            if w1 > MIN_DELTA_S and wt > w1:
                errors.append(
                    f"{'/'.join(fam)}: ANTI-SCALING {top}-thread wall "
                    f"{wt:.4f}s exceeds 1-thread wall {w1:.4f}s "
                    f"(efficiency {w1 / wt / top:.2f}; parallel cells must "
                    "at worst break even)"
                )

    for k in sorted(base_cells):
        if k not in cur_cells:
            errors.append(f"cell {k} missing from {cur_path}")
    for k in sorted(cur_cells):
        if k not in base_cells:
            warnings.append(f"new cell {k} (not in {base_path})")

    for k in sorted(set(base_cells) & set(cur_cells)):
        b, c = base_cells[k], cur_cells[k]
        name = "/".join(k)
        b_status = b.get("status", "ok")
        c_status = c.get("status", "ok")
        if c_status != "ok":
            if b_status == "ok":
                errors.append(
                    f"{name}: was ok in {base_path} but is now "
                    f"{c_status} ({c.get('error', 'no error recorded')})"
                )
            else:
                notes.append(f"{name}: still {c_status} (baseline: {b_status})")
            continue
        if b_status != "ok":
            notes.append(
                f"{name}: baseline was {b_status} but now completes; "
                "re-baseline to lock the recovery in"
            )
            continue
        if "queries" in c or "queries" in b:
            # Batched cell: verification is per query, and one query's
            # regression must surface even when its siblings pass.
            base_queries = b.get("queries", [])
            for j, cq in enumerate(c.get("queries", [])):
                bq = base_queries[j] if j < len(base_queries) else {}
                cq_status = cq.get("status", "ok")
                if cq_status != "ok":
                    if bq.get("status", "ok") == "ok":
                        errors.append(
                            f"{name} query {j}: was ok in {base_path} but is "
                            f"now {cq_status} "
                            f"({cq.get('error', 'no error recorded')})"
                        )
                    else:
                        notes.append(f"{name} query {j}: still {cq_status}")
                elif not cq.get("verified", False):
                    errors.append(f"{name} query {j}: current run is not verified")
        elif not c.get("verified", False):
            errors.append(f"{name}: current run is not verified")
        if "requests" in b or "requests" in c:
            # v8 service cell: a *served* request flipping from ok to any
            # failed/timeout/oom disposition under the clean mixed load is
            # a hard regression even if the cell as a whole reports ok.
            # (Admission rejections already flip the cell status itself.)
            served_bad = ("failed", "timeout", "oom", "transport_errors")
            b_bad = sum(b.get(f, 0) for f in served_bad)
            c_bad = sum(c.get(f, 0) for f in served_bad)
            if b_bad == 0 and c_bad > 0:
                errors.append(
                    f"{name}: served requests regressed ok -> non-ok "
                    f"(failed={c.get('failed', 0)} "
                    f"timeout={c.get('timeout', 0)} oom={c.get('oom', 0)} "
                    f"transport={c.get('transport_errors', 0)} of "
                    f"{c.get('requests', 0)}; baseline served all ok)"
                )
            if not c.get("drained_clean", True):
                errors.append(f"{name}: server did not drain cleanly")
        if not comparable:
            continue
        bw, cw = b["wall_s"], c["wall_s"]
        if bw > 0 and cw - bw > MIN_DELTA_S and cw > bw * (1 + threshold / 100.0):
            regressions.append(
                f"{name}: wall {bw:.4f}s -> {cw:.4f}s "
                f"(+{(cw / bw - 1) * 100.0:.0f}%, threshold {threshold:.0f}%)"
            )
        bt, ct = b.get("trace", {}), c.get("trace", {})
        gated = k[0] in MATERIALIZATION_GATED
        natural = c.get("order", "natural") == "natural"
        for counter in STABLE_COUNTERS:
            if counter in bt and counter in ct and bt[counter] != ct[counter]:
                # Reordering is strictly opt-in: the natural-order path
                # must stay bit-identical across the reordering tier's
                # existence, so a deterministic-counter drift there is a
                # regression, not a warning. "Deterministic" excludes
                # LS passes/product_rounds, which count async worklist
                # loops and are legitimately scheduling-perturbed
                # (ktruss at 4 threads flips between 4 and 5 peel
                # rounds run to run); materialized_bytes is structural
                # on every system and gates everywhere.
                ls_async = c.get("system") == "LS" and counter != "materialized_bytes"
                if natural and not ls_async:
                    errors.append(
                        f"{name}: {counter} drifted {bt[counter]} -> "
                        f"{ct[counter]} on a natural-order cell "
                        "(the untouched path must stay bit-stable)"
                    )
                elif counter == "materialized_bytes" and gated:
                    if ct[counter] > bt[counter]:
                        errors.append(
                            f"{name}: materialized_bytes ROSE "
                            f"{bt[counter]} -> {ct[counter]} (frontier cells "
                            "must not re-grow their accumulators)"
                        )
                    else:
                        notes.append(
                            f"{name}: materialized_bytes dropped "
                            f"{bt[counter]} -> {ct[counter]} (accepted "
                            "improvement; re-baseline to lock it in)"
                        )
                else:
                    warnings.append(
                        f"{name}: {counter} drifted {bt[counter]} -> {ct[counter]}"
                    )
        if (
            same_workspace
            and k[0] in ALLOC_GATED
            and "alloc_bytes" in bt
            and "alloc_bytes" in ct
        ):
            ba, ca = bt["alloc_bytes"], ct["alloc_bytes"]
            limit = ba * (1 + ALLOC_HEADROOM_REL) + ALLOC_HEADROOM_ABS
            if ca > limit:
                errors.append(
                    f"{name}: alloc_bytes ROSE {ba} -> {ca} "
                    f"(limit {limit:.0f}; workspace-recycled cells must not "
                    "re-grow their per-call allocation churn)"
                )
            elif ca < ba * (1 - ALLOC_HEADROOM_REL) - ALLOC_HEADROOM_ABS:
                notes.append(
                    f"{name}: alloc_bytes dropped {ba} -> {ca} (accepted "
                    "improvement; re-baseline to lock it in)"
                )

    for msg in errors:
        print(f"ERROR: {msg}")
    for msg in regressions:
        print(f"REGRESSION: {msg}")
    for msg in warnings:
        print(f"warning: {msg}")
    for msg in notes:
        print(f"note: {msg}")

    shared = len(set(base_cells) & set(cur_cells))
    print(
        f"compared {shared} cells: {len(regressions)} regression(s), "
        f"{len(warnings)} warning(s), {len(errors)} error(s), "
        f"{len(notes)} note(s)"
    )
    if errors:
        return 1
    if regressions and fail_on_regression:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
