#!/usr/bin/env python3
"""Diff two BENCH_baseline.json files and flag wall-time regressions.

Usage: python3 scripts/compare_bench.py BASELINE CURRENT [--threshold PCT]
                                        [--fail-on-regression]

Both files must carry the same ``schema`` string ("graph-api-study/
bench-baseline/v1"); a mismatch is a hard failure (exit 2) because the
cells are not comparable across schema revisions. Cells are keyed by
(problem, system, graph). For every cell present in both files the
tracing-off ``wall_s`` is compared; a slowdown beyond the threshold
(default 20%) is reported as a regression.

By default regressions only warn (exit 0) — CI wall times on shared
runners are too noisy for a hard gate — but ``--fail-on-regression``
turns them into exit 1 for local use. Missing cells, unverified cells,
and trace-counter drifts (passes / product_rounds / materialized_bytes,
which are deterministic and *should* be stable) are always reported.

Exit codes: 0 ok / warnings only, 1 regression with --fail-on-regression
or malformed input, 2 schema mismatch.
"""

import json
import sys

SCHEMA = "graph-api-study/bench-baseline/v1"
# Trace counters that are deterministic for a fixed (scale, graph, problem,
# system) — a drift here means algorithmic behaviour changed, not noise.
STABLE_COUNTERS = ("passes", "product_rounds", "materialized_bytes")
# Ignore relative slowdowns below this absolute delta: sub-millisecond
# cells are pure timer noise at any percentage.
MIN_DELTA_S = 0.005


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(1)
    if not isinstance(doc, dict) or "schema" not in doc or "cells" not in doc:
        print(f"error: {path} is not a bench-baseline document", file=sys.stderr)
        sys.exit(1)
    return doc


def key(cell):
    return (cell["problem"], cell["system"], cell["graph"])


def main(argv):
    args = [a for a in argv if not a.startswith("--")]
    fail_on_regression = "--fail-on-regression" in argv
    threshold = 20.0
    if "--threshold" in argv:
        i = argv.index("--threshold")
        try:
            threshold = float(argv[i + 1])
            args.remove(argv[i + 1])
        except (IndexError, ValueError):
            print("error: --threshold needs a number", file=sys.stderr)
            return 1
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 1
    base_path, cur_path = args
    base, cur = load(base_path), load(cur_path)

    if base["schema"] != SCHEMA or cur["schema"] != SCHEMA:
        print(
            f"error: schema mismatch: {base_path} has {base['schema']!r}, "
            f"{cur_path} has {cur['schema']!r}, expected {SCHEMA!r}",
            file=sys.stderr,
        )
        return 2

    base_cells = {key(c): c for c in base["cells"]}
    cur_cells = {key(c): c for c in cur["cells"]}
    comparable = base.get("scale") == cur.get("scale")
    if not comparable:
        print(
            f"note: scales differ ({base.get('scale')} vs {cur.get('scale')}); "
            "wall times and counters are not comparable, checking coverage only"
        )

    regressions, warnings, errors = [], [], []

    for k in sorted(base_cells):
        if k not in cur_cells:
            errors.append(f"cell {k} missing from {cur_path}")
    for k in sorted(cur_cells):
        if k not in base_cells:
            warnings.append(f"new cell {k} (not in {base_path})")

    for k in sorted(set(base_cells) & set(cur_cells)):
        b, c = base_cells[k], cur_cells[k]
        name = "/".join(k)
        if not c.get("verified", False):
            errors.append(f"{name}: current run is not verified")
        if not comparable:
            continue
        bw, cw = b["wall_s"], c["wall_s"]
        if bw > 0 and cw - bw > MIN_DELTA_S and cw > bw * (1 + threshold / 100.0):
            regressions.append(
                f"{name}: wall {bw:.4f}s -> {cw:.4f}s "
                f"(+{(cw / bw - 1) * 100.0:.0f}%, threshold {threshold:.0f}%)"
            )
        bt, ct = b.get("trace", {}), c.get("trace", {})
        for counter in STABLE_COUNTERS:
            if counter in bt and counter in ct and bt[counter] != ct[counter]:
                warnings.append(
                    f"{name}: {counter} drifted {bt[counter]} -> {ct[counter]}"
                )

    for msg in errors:
        print(f"ERROR: {msg}")
    for msg in regressions:
        print(f"REGRESSION: {msg}")
    for msg in warnings:
        print(f"warning: {msg}")

    shared = len(set(base_cells) & set(cur_cells))
    print(
        f"compared {shared} cells: {len(regressions)} regression(s), "
        f"{len(warnings)} warning(s), {len(errors)} error(s)"
    )
    if errors:
        return 1
    if regressions and fail_on_regression:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
