//! The whole study in miniature: run all six problems through all three
//! systems on one graph, verify everything, and print a Table II-style
//! summary.
//!
//! ```text
//! cargo run --example api_comparison --release [-- <graph-name>]
//! ```

use graph_api_study::graph::{Scale, StudyGraph};
use graph_api_study::study_core::report::{secs, Table};
use graph_api_study::study_core::{timed_run, verify, PreparedGraph, Problem, System};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "rmat22".into());
    let which = StudyGraph::all()
        .into_iter()
        .find(|g| g.name().eq_ignore_ascii_case(&name))
        .unwrap_or(StudyGraph::Rmat22);

    println!("preparing {} (scale 1/8) ...", which.name());
    let p = PreparedGraph::study(which, Scale::custom(1.0 / 8.0));
    println!(
        "{}: {} vertices, {} edges, source {}\n",
        p.name,
        p.graph.num_nodes(),
        p.graph.num_edges(),
        p.source
    );

    let mut table = Table::new(["problem", "SS (s)", "GB (s)", "LS (s)", "LS speedup"]);
    for problem in Problem::all() {
        let mut times = Vec::new();
        for system in System::all() {
            let m = timed_run(system, problem, &p);
            verify::verify(&p, problem, &m.output)
                .unwrap_or_else(|e| panic!("{system} {problem}: {e}"));
            times.push(m.elapsed);
        }
        let speedup = times[0].as_secs_f64() / times[2].as_secs_f64().max(1e-9);
        table.row([
            problem.name().to_string(),
            secs(times[0]),
            secs(times[1]),
            secs(times[2]),
            format!("{speedup:.1}x"),
        ]);
    }
    println!("{table}");
    println!("all 18 runs verified against serial references.");
}
