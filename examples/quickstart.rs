//! Quickstart: build a graph, run the same problem through both API
//! styles, and verify they agree.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use graph_api_study::graph::builder::GraphBuilder;
use graph_api_study::graphblas::binops::LorLand;
use graph_api_study::graphblas::{ops, Descriptor, GaloisRuntime, Matrix, Vector};
use graph_api_study::lonestar;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small directed graph: two levels of fan-out from vertex 0.
    let g = GraphBuilder::new(7)
        .add_edge(0, 1)
        .add_edge(0, 2)
        .add_edge(1, 3)
        .add_edge(1, 4)
        .add_edge(2, 5)
        .add_edge(5, 6)
        .build();

    // --- Graph-based API (Lonestar/Galois): one fused loop per round ---
    let ls = lonestar::bfs::bfs(&g, 0);
    println!("graph API   bfs levels: {:?}", ls.level);

    // --- Matrix-based API (LAGraph/GraphBLAS): Algorithm 2 by hand ----
    let a: Matrix<u32> = Matrix::from_graph(&g, |_| 1);
    let n = g.num_nodes();
    let mut dist: Vector<u32> = Vector::new(n);
    ops::assign_scalar(&mut dist, None::<&Vector<bool>>, 0, &Descriptor::new(), GaloisRuntime)?;
    let mut frontier: Vector<u32> = Vector::new(n);
    frontier.set(0, 1)?;
    let mut level = 0;
    while frontier.nvals() > 0 {
        level += 1;
        ops::assign_scalar(&mut dist, Some(&frontier), level, &Descriptor::new(), GaloisRuntime)?;
        let mut next: Vector<u32> = Vector::new(n);
        ops::vxm(
            &mut next,
            Some(&dist),
            LorLand,
            &frontier,
            &a,
            &Descriptor::replace_complement(),
            GaloisRuntime,
        )?;
        frontier = next;
    }
    let gb: Vec<u32> = (0..n as u32).map(|i| dist.get(i).unwrap_or(0)).collect();
    println!("matrix API  bfs levels: {gb:?}");

    assert_eq!(ls.level, gb, "both APIs must compute the same answer");
    println!("\nboth APIs agree; the difference the study measures is *how fast*.");
    Ok(())
}
