//! Road-network navigation: the high-diameter scenario where asynchronous
//! execution crushes round-based execution (paper §V-B, sssp).
//!
//! Generates a road-like grid, runs single-source shortest paths with
//! (a) Lonestar's asynchronous delta-stepping on the OBIM work-list and
//! (b) LAGraph's bulk-synchronous delta-stepping, and reports times and
//! the bulk version's round count.
//!
//! ```text
//! cargo run --example road_navigation --release
//! ```

use graph_api_study::graph::gen::grid_road;
use graph_api_study::graphblas::GaloisRuntime;
use graph_api_study::{lagraph, lonestar};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 300 x 120 "state road map": diameter ≈ 418 hops.
    let map = grid_road(300, 120, 7);
    println!(
        "road map: {} intersections, {} road segments",
        map.num_nodes(),
        map.num_edges()
    );
    let depot = 0;
    let delta = 1 << 13;

    let t = Instant::now();
    let ls = lonestar::sssp::sssp(&map, depot, delta, true);
    let ls_time = t.elapsed();

    let t = Instant::now();
    let gb = lagraph::sssp::sssp_delta_stepping(&map, depot, delta, GaloisRuntime)?;
    let gb_time = t.elapsed();

    assert_eq!(ls.dist, gb.dist, "both must find the same routes");

    let reachable = ls.dist.iter().filter(|&&d| d != u64::MAX).count();
    let farthest = ls.dist.iter().filter(|&&d| d != u64::MAX).max().unwrap();
    println!("routes computed to {reachable} intersections; farthest cost {farthest}");
    println!();
    println!(
        "async delta-stepping (graph API):  {:>8.2?}  ({} work items, no rounds)",
        ls_time, ls.work_items
    );
    println!(
        "bulk-sync delta-stepping (matrix): {:>8.2?}  ({} buckets, {} bulk rounds)",
        gb_time, gb.buckets, gb.rounds
    );
    println!(
        "speedup: {:.1}x — the matrix API must run one full-graph round per\n\
         bucket iteration, and a high-diameter road network needs many of them.",
        gb_time.as_secs_f64() / ls_time.as_secs_f64().max(1e-9)
    );
    Ok(())
}
