//! Web-page ranking: pagerank over a host-structured crawl, comparing the
//! fused-loop graph-API implementation against the multi-pass matrix-API
//! one, and the AoS-vs-SoA layout effect (paper Figure 3(a)).
//!
//! ```text
//! cargo run --example web_ranking --release
//! ```

use graph_api_study::graph::gen::web_crawl;
use graph_api_study::graph::transform::transpose;
use graph_api_study::graphblas::GaloisRuntime;
use graph_api_study::{lagraph, lonestar};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let crawl = web_crawl(40, 250, 11);
    println!(
        "crawl: {} pages, {} links",
        crawl.num_nodes(),
        crawl.num_edges()
    );
    let gt = transpose(&crawl);
    let out_deg: Vec<u32> = (0..crawl.num_nodes() as u32)
        .map(|v| crawl.out_degree(v) as u32)
        .collect();
    let iters = 10;

    let t = Instant::now();
    let ls = lonestar::pagerank::pagerank(&gt, &out_deg, iters);
    let ls_time = t.elapsed();

    let t = Instant::now();
    let ls_soa = lonestar::pagerank::pagerank_soa(&gt, &out_deg, iters);
    let soa_time = t.elapsed();

    let t = Instant::now();
    let gb_res = lagraph::pagerank::pagerank_residual(&crawl, iters, GaloisRuntime)?;
    let gbres_time = t.elapsed();

    let t = Instant::now();
    let gb = lagraph::pagerank::pagerank(&crawl, iters, GaloisRuntime)?;
    let gb_time = t.elapsed();

    for (name, other) in [("ls-soa", &ls_soa), ("gb-res", &gb_res), ("gb", &gb)] {
        let max_diff = ls
            .iter()
            .zip(other.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_diff < 1e-9, "{name} diverged by {max_diff}");
    }

    // Top pages should be the host front pages (high in-degree).
    let mut ranked: Vec<(usize, f64)> = ls.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top 5 pages by rank: {:?}", &ranked[..5]);
    println!();
    println!("pr-ls      (fused loop, AoS):      {ls_time:>8.2?}");
    println!("pr-ls-soa  (fused loop, SoA):      {soa_time:>8.2?}");
    println!("pr-gb-res  (matrix API, residual): {gbres_time:>8.2?}");
    println!("pr-gb      (matrix API, topology): {gb_time:>8.2?}");
    println!(
        "\nthe matrix API touches the residual vector in two separate calls per\n\
         round; the graph API fuses rank update and residual scaling into one loop."
    );
    Ok(())
}
