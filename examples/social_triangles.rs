//! Community analysis on a social network: triangle counting and k-truss
//! decomposition, showing the materialization gap (paper §V-B, tc and
//! ktruss).
//!
//! ```text
//! cargo run --example social_triangles --release
//! ```

use graph_api_study::graph::gen::preferential_attachment;
use graph_api_study::graph::transform::{sort_by_degree, symmetrize};
use graph_api_study::graphblas::GaloisRuntime;
use graph_api_study::{lagraph, lonestar};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = symmetrize(&preferential_attachment(20_000, 8, false, 3));
    println!(
        "social network: {} users, {} friendships",
        network.num_nodes(),
        network.num_edges() / 2
    );
    let (sorted, _) = sort_by_degree(&network);

    // Triangle counting: graph API bumps a counter; matrix API must
    // materialize a matrix with one entry per edge, then reduce it.
    let t = Instant::now();
    let ls_triangles = lonestar::tc::tc(&sorted);
    let ls_time = t.elapsed();

    let t = Instant::now();
    let gb = lagraph::tc::tc_sandia_dot(&network, GaloisRuntime)?;
    let gb_time = t.elapsed();

    assert_eq!(ls_triangles, gb.triangles);
    println!("\ntriangles: {ls_triangles}");
    println!("tc-ls (graph API):  {ls_time:>8.2?}  (materialized: nothing)");
    println!(
        "tc-gb (matrix API): {gb_time:>8.2?}  (materialized: {} matrix entries)",
        gb.materialized_nvals
    );

    // k-truss: immediate (Gauss-Seidel) vs end-of-round (Jacobi) removal.
    let k = 4;
    let t = Instant::now();
    let ls_truss = lonestar::ktruss::ktruss(&network, k);
    let ls_kt = t.elapsed();
    let t = Instant::now();
    let gb_truss = lagraph::ktruss::ktruss(&network, k, GaloisRuntime)?;
    let gb_kt = t.elapsed();
    assert_eq!(ls_truss.edges_remaining, gb_truss.edges_remaining);
    println!(
        "\n{k}-truss: {} friendships survive",
        ls_truss.edges_remaining / 2
    );
    println!(
        "ktruss-ls: {ls_kt:>8.2?} in {} rounds (removals visible immediately)",
        ls_truss.rounds
    );
    println!(
        "ktruss-gb: {gb_kt:>8.2?} in {} rounds (removals visible at round end)",
        gb_truss.rounds
    );
    Ok(())
}
